package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startSniff spins a SniffServer on loopback whose frame handler
// echoes each length-prefixed frame back and whose HTTP handler
// reports the request path.
func startSniff(t *testing.T, keepAlive bool) (*SniffServer, string, *atomic.Int64) {
	t.Helper()
	var frames atomic.Int64
	s := &SniffServer{
		HTTP: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, "path=%s", r.URL.Path)
		}),
		Frame: func(conn net.Conn) {
			defer conn.Close()
			for {
				var hdr [4]byte
				if _, err := io.ReadFull(conn, hdr[:]); err != nil {
					return
				}
				body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
				if _, err := io.ReadFull(conn, body); err != nil {
					return
				}
				frames.Add(1)
				conn.Write(hdr[:])
				conn.Write(body)
			}
		},
		KeepAlive: keepAlive,
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(lis)
	t.Cleanup(s.Close)
	return s, lis.Addr().String(), &frames
}

// sendFrame writes one length-prefixed frame and reads the echo.
func sendFrame(t *testing.T, addr string, payload []byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(append(hdr[:], payload...)); err != nil {
		t.Fatalf("write frame: %v", err)
	}
	echo := make([]byte, 4+len(payload))
	if _, err := io.ReadFull(conn, echo); err != nil {
		t.Fatalf("read echo: %v", err)
	}
	if string(echo[4:]) != string(payload) {
		t.Fatalf("echo mismatch: %q", echo[4:])
	}
}

func httpGet(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestSniffInterleaved drives wire frames and HTTP requests
// concurrently over one port: every frame must reach the frame
// handler, every request the HTTP handler, with no cross-talk.  Run
// under -race this is also the mux's concurrency test (make race).
func TestSniffInterleaved(t *testing.T) {
	for _, keepAlive := range []bool{false, true} {
		t.Run(fmt.Sprintf("keepalive=%v", keepAlive), func(t *testing.T) {
			_, addr, frames := startSniff(t, keepAlive)
			const n = 32
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(2)
				go func(i int) {
					defer wg.Done()
					sendFrame(t, addr, []byte(fmt.Sprintf("frame-%d", i)))
				}(i)
				go func(i int) {
					defer wg.Done()
					path := fmt.Sprintf("/req/%d", i)
					if got := httpGet(t, addr, path); got != "path="+path {
						t.Errorf("HTTP response %q, want path=%s", got, path)
					}
				}(i)
			}
			wg.Wait()
			if got := frames.Load(); got != n {
				t.Errorf("frame handler saw %d frames, want %d", got, n)
			}
		})
	}
}

// TestSniffMalformedFirstByte covers the sniff decision table: a
// leading zero byte routes to the frame handler even when the rest is
// garbage, any nonzero first byte routes to HTTP (which answers 400
// to non-HTTP bytes), and a connection that dies before its first
// byte is simply closed.
func TestSniffMalformedFirstByte(t *testing.T) {
	_, addr, frames := startSniff(t, false)

	// Nonzero garbage: lands on the HTTP stack, which must answer
	// (with an error) rather than hang or crash the mux.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write([]byte{0xFF, 0xFE, 0xFD}); err != nil {
		t.Fatal(err)
	}
	reply, _ := io.ReadAll(conn)
	conn.Close()
	if len(reply) == 0 {
		t.Error("garbage connection got no HTTP error reply")
	}

	// Immediate EOF: no byte ever arrives; the mux must just drop it.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn2.Close()

	// Zero first byte with a torn frame: reaches the frame handler,
	// which hits EOF mid-frame and returns.
	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn3.Write([]byte{0x00, 0x00})
	conn3.Close()

	// The port still works for both protocols afterwards.
	sendFrame(t, addr, []byte("after"))
	if got := httpGet(t, addr, "/ok"); got != "path=/ok" {
		t.Errorf("HTTP after malformed conns: %q", got)
	}
	if frames.Load() < 1 {
		t.Error("frame handler never ran")
	}
}

// TestSniffNoFrameHandler: an HTTP-only SniffServer closes framed
// connections instead of leaking them.
func TestSniffNoFrameHandler(t *testing.T) {
	s := &SniffServer{HTTP: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(lis)
	defer s.Close()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	conn.Write([]byte{0x00, 0x01, 0x02})
	buf := make([]byte, 1)
	// The server closes the conn without reading the payload, so the
	// client sees EOF or a reset — anything but data or a hang.
	if n, err := conn.Read(buf); err == nil {
		t.Errorf("framed conn on HTTP-only server: got %d bytes, want close", n)
	}
	conn.Close()
}

// TestServeHTTPConn exercises the one-shot path netwire's debug
// handler uses directly: one exchange per connection, keep-alive off.
func TestServeHTTPConn(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go ServeHTTPConn(conn, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				io.WriteString(w, "one-shot")
			}))
		}
	}()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "one-shot" {
		t.Errorf("body %q", body)
	}
	if !resp.Close {
		t.Error("one-shot response should set Connection: close")
	}
}
