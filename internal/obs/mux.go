package obs

import (
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// Byte-sniffed protocol mux: the one-port trick every serving surface
// in this repository shares.  A length-prefixed wire frame's first byte
// is always zero (frame bodies are bounded well below 1<<24, so the
// big-endian length prefix leads with a zero byte), while an HTTP
// request line starts with a nonzero ASCII method byte.  Reading a
// single byte therefore tells the two protocols apart with no
// handshake, and replaying that byte through a prefixed connection
// keeps both protocol stacks unaware anything was sniffed.
//
// internal/netwire uses this to serve /debug/metrics and pprof on its
// data ports; cmd/wfserve uses it the other way around, multiplexing a
// binary announce fast path onto its HTTP control port.

// SniffConn reads the first byte of conn and reports whether the
// connection speaks the framed wire protocol (first byte zero) or
// something text-like (HTTP).  The returned connection replays the
// sniffed byte, so the caller hands it to either stack unchanged.  An
// error means the connection died before a single byte arrived; the
// caller should close it.
func SniffConn(conn net.Conn) (wrapped net.Conn, frame bool, err error) {
	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return conn, false, err
	}
	return &prefixConn{Conn: conn, pre: []byte{first[0]}}, first[0] == 0, nil
}

// ServeHTTPConn serves HTTP on one already-accepted (and typically
// already-sniffed) connection.  Keep-alives are off so the goroutine
// ends with its one exchange — debug and control traffic never
// accumulates connection state on the data path.
func ServeHTTPConn(conn net.Conn, h http.Handler) {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	srv.SetKeepAlivesEnabled(false)
	// Serve returns once the one-shot listener is exhausted; the
	// connection itself is closed by the server when the exchange ends.
	srv.Serve(&oneShotListener{conn: conn})
}

// SniffServer accepts connections from one listener and dispatches
// each by its first byte: zero-leading (framed) connections to Frame,
// everything else to the HTTP handler.  This is the standalone form of
// the mux for servers whose primary protocol is HTTP (cmd/wfserve);
// internal/netwire embeds the same SniffConn/ServeHTTPConn pair inside
// its own accept loop because frames are its primary protocol.
type SniffServer struct {
	// HTTP handles non-frame connections; required.
	HTTP http.Handler
	// Frame handles connections whose first byte is zero, receiving the
	// connection with the sniffed byte replayed.  The handler owns the
	// connection and must close it.  Nil closes frame connections
	// immediately (the port speaks only HTTP).
	Frame func(net.Conn)
	// KeepAlive, when true, serves HTTP connections through one shared
	// http.Server with keep-alives instead of a one-shot server per
	// connection — the right trade for a control API handling sustained
	// request streams.
	KeepAlive bool

	mu     sync.Mutex
	lis    net.Listener
	httpCh chan net.Conn
	done   chan struct{}
	srv    *http.Server
	closed bool
}

// Serve accepts until the listener closes.  It owns lis and closes it
// on Close.
func (s *SniffServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.done = make(chan struct{})
	if s.KeepAlive {
		s.httpCh = make(chan net.Conn)
		s.srv = &http.Server{Handler: s.HTTP, ReadHeaderTimeout: 5 * time.Second}
		go s.srv.Serve(&chanListener{ch: s.httpCh, done: s.done, addr: lis.Addr()})
	}
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.serveConn(conn)
	}
}

func (s *SniffServer) serveConn(conn net.Conn) {
	wrapped, frame, err := SniffConn(conn)
	if err != nil {
		conn.Close()
		return
	}
	if frame {
		if s.Frame == nil {
			conn.Close()
			return
		}
		s.Frame(wrapped)
		return
	}
	if s.KeepAlive {
		s.mu.Lock()
		ch, done := s.httpCh, s.done
		s.mu.Unlock()
		// The shared server's Accept is pending until Close fires done,
		// so exactly one arm ever proceeds.
		select {
		case ch <- wrapped:
		case <-done:
			conn.Close()
		}
		return
	}
	ServeHTTPConn(wrapped, s.HTTP)
}

// Close stops accepting; in-flight exchanges finish on their own.
func (s *SniffServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lis, srv, done := s.lis, s.srv, s.done
	s.mu.Unlock()
	if done != nil {
		close(done)
	}
	if lis != nil {
		lis.Close()
	}
	if srv != nil {
		srv.Close()
	}
}

// prefixConn replays already-sniffed bytes before reading from the
// underlying connection.
type prefixConn struct {
	net.Conn
	pre []byte
}

func (c *prefixConn) Read(p []byte) (int, error) {
	if len(c.pre) > 0 {
		n := copy(p, c.pre)
		c.pre = c.pre[n:]
		return n, nil
	}
	return c.Conn.Read(p)
}

// oneShotListener yields a single accepted connection, then reports
// closed — the adapter that lets http.Server serve one conn.
type oneShotListener struct {
	mu   sync.Mutex
	conn net.Conn
}

func (l *oneShotListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == nil {
		return nil, net.ErrClosed
	}
	c := l.conn
	l.conn = nil
	return c, nil
}

func (l *oneShotListener) Close() error { return nil }

func (l *oneShotListener) Addr() net.Addr { return sniffAddr{} }

// chanListener adapts a channel of pre-accepted connections into the
// net.Listener a shared keep-alive http.Server wants.  It never closes
// the channel — senders race Close — and instead unblocks Accept
// through the shared done signal.
type chanListener struct {
	ch   chan net.Conn
	done chan struct{}
	addr net.Addr
}

func (l *chanListener) Accept() (net.Conn, error) {
	select {
	case conn := <-l.ch:
		return conn, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *chanListener) Close() error { return nil }

func (l *chanListener) Addr() net.Addr { return l.addr }

type sniffAddr struct{}

func (sniffAddr) Network() string { return "obs-sniff" }
func (sniffAddr) String() string  { return "obs-sniff" }
