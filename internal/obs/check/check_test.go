package check

import (
	"testing"

	"repro/internal/obs"
)

// rec builds a record with the fields the checker reads.
func rec(seq uint64, lam int64, site, kind, sym, verdict string, at int64) obs.Record {
	return obs.Record{Seq: seq, Lamport: lam, Site: site, Kind: kind,
		Sym: sym, Verdict: verdict, At: at}
}

func invariants(vs []Violation) map[string]int {
	out := map[string]int{}
	for _, v := range vs {
		out[v.Invariant]++
	}
	return out
}

func TestCleanTracePasses(t *testing.T) {
	recs := []obs.Record{
		rec(0, 0, "a", obs.KindAttempt, "e", "", 0),
		rec(1, 0, "a", obs.KindEval, "e", "true", 0),
		rec(2, 1, "a", obs.KindFire, "e", "", 1),
		rec(3, 1, "b", obs.KindAnnounce, "e", "", 1),
		rec(4, 1, "b", obs.KindEval, "f", "false", 0),
		rec(5, 2, "b", obs.KindReject, "f", "guard false", 0),
	}
	if vs := Trace(recs); len(vs) != 0 {
		t.Fatalf("clean trace flagged: %v", vs)
	}
}

func TestForcedAttemptEnablesFire(t *testing.T) {
	recs := []obs.Record{
		rec(0, 0, "a", obs.KindAttempt, "e", "forced", 0),
		rec(1, 1, "a", obs.KindFire, "e", "", 1),
	}
	if vs := Trace(recs); len(vs) != 0 {
		t.Fatalf("forced fire flagged: %v", vs)
	}
}

func TestWaveVerdictEnablesFire(t *testing.T) {
	recs := []obs.Record{
		rec(0, 0, "a", obs.KindEval, "e", "wave", 0),
		rec(1, 1, "a", obs.KindFire, "e", "", 1),
	}
	if vs := Trace(recs); len(vs) != 0 {
		t.Fatalf("wave-enabled fire flagged: %v", vs)
	}
}

func TestFireWithoutEvidence(t *testing.T) {
	recs := []obs.Record{
		rec(0, 0, "a", obs.KindEval, "e", "unknown", 0),
		rec(1, 1, "a", obs.KindFire, "e", "", 1),
	}
	if got := invariants(Trace(recs)); got["causal-fire"] != 1 {
		t.Fatalf("want one causal-fire violation, got %v", got)
	}
}

func TestEvidenceIsPerInstance(t *testing.T) {
	// Evidence in instance 0 must not license a fire in instance 1.
	recs := []obs.Record{
		{Seq: 0, Site: "a", Inst: 0, Kind: obs.KindEval, Sym: "e", Verdict: "true"},
		{Seq: 1, Site: "a", Inst: 1, Kind: obs.KindFire, Sym: "e", At: 1, Lamport: 1},
	}
	if got := invariants(Trace(recs)); got["causal-fire"] != 1 {
		t.Fatalf("cross-instance evidence accepted: %v", got)
	}
}

func TestDuplicateTerminal(t *testing.T) {
	recs := []obs.Record{
		rec(0, 0, "a", obs.KindEval, "e", "true", 0),
		rec(1, 1, "a", obs.KindFire, "e", "", 1),
		rec(2, 2, "a", obs.KindFire, "e", "", 2),
	}
	if got := invariants(Trace(recs)); got["dup-terminal"] != 1 {
		t.Fatalf("want one dup-terminal violation, got %v", got)
	}
}

func TestBothPolaritiesFired(t *testing.T) {
	recs := []obs.Record{
		rec(0, 0, "a", obs.KindEval, "e", "true", 0),
		rec(1, 1, "a", obs.KindFire, "e", "", 1),
		rec(2, 1, "b", obs.KindEval, "~e", "true", 0),
		rec(3, 2, "b", obs.KindFire, "~e", "", 2),
	}
	if got := invariants(Trace(recs)); got["dup-terminal"] != 1 {
		t.Fatalf("want one dup-terminal (both polarities), got %v", got)
	}
}

func TestFireThenComplementReject(t *testing.T) {
	// One polarity firing and the other being rejected is the normal
	// resolution, not a violation.
	recs := []obs.Record{
		rec(0, 0, "a", obs.KindEval, "e", "true", 0),
		rec(1, 1, "a", obs.KindFire, "e", "", 1),
		rec(2, 2, "a", obs.KindReject, "~e", "complement occurred", 0),
	}
	if vs := Trace(recs); len(vs) != 0 {
		t.Fatalf("fire+complement-reject flagged: %v", vs)
	}
}

func TestLamportRegression(t *testing.T) {
	recs := []obs.Record{
		rec(0, 5, "a", obs.KindEval, "e", "unknown", 0),
		rec(1, 3, "a", obs.KindEval, "e", "unknown", 0),
	}
	if got := invariants(Trace(recs)); got["lamport-order"] != 1 {
		t.Fatalf("want one lamport-order violation, got %v", got)
	}
}

func TestLamportOrderIsPerStream(t *testing.T) {
	// Different sites (or instances) are separate streams: a lower
	// stamp on another site is not a regression.
	recs := []obs.Record{
		rec(0, 5, "a", obs.KindEval, "e", "unknown", 0),
		rec(0, 3, "b", obs.KindEval, "f", "unknown", 0),
	}
	if vs := Trace(recs); len(vs) != 0 {
		t.Fatalf("cross-site stamps flagged: %v", vs)
	}
}

func TestStreamsOrderedBySeqNotInput(t *testing.T) {
	// A causally merged stream interleaves sites; the checker must
	// re-order each stream by Seq before checking monotonicity.
	recs := []obs.Record{
		rec(1, 4, "a", obs.KindEval, "e", "unknown", 0),
		rec(0, 2, "a", obs.KindEval, "e", "unknown", 0),
	}
	if vs := Trace(recs); len(vs) != 0 {
		t.Fatalf("seq-sorted stream flagged: %v", vs)
	}
}

func TestAnnounceBeforeOccurrence(t *testing.T) {
	recs := []obs.Record{
		{Seq: 0, Lamport: 1, Site: "b", Kind: obs.KindAnnounce, Sym: "e", At: 5},
	}
	if got := invariants(Trace(recs)); got["announce-before-occurrence"] != 1 {
		t.Fatalf("want one announce-before-occurrence violation, got %v", got)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Invariant: "causal-fire", Detail: "e fired early",
		Record: obs.Record{Site: "a", Inst: 2, Seq: 7, Lamport: 3}}
	want := "causal-fire: e fired early (site=a inst=2 seq=7 lam=3)"
	if got := v.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
