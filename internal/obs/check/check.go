// Package check validates decision traces against the protocol
// invariants every transport must uphold.  The chaos suite runs it on
// every fault plan's trace; cmd/wftrace runs it on captured JSONL.
//
// The invariants are deliberately provable on all three transports —
// they constrain only what a single site's record stream may claim,
// plus the Lamport relation between a record and the occurrence it
// reports:
//
//  1. Causal firing: a fire record is preceded (same site and
//     instance, lower sequence number) by an evaluation of the same
//     symbol with verdict true or wave, or by a forced attempt — an
//     event never fires without its guard's enabling knowledge.
//  2. Terminal uniqueness: per instance, each polarity reaches at most
//     one terminal verdict (fire or reject), and never fires after its
//     complement fired.
//  3. Monotone stamps: within one (site, instance) stream, Lamport
//     stamps never decrease in sequence order — the emitting clock
//     only moves forward.
//  4. Announcement causality: an announcement's Lamport stamp is at
//     least the occurrence index it reports — no site learns of an
//     occurrence before the clock that issued it could have reached
//     that value.
package check

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// Violation is one invariant breach, tied to the record that exposed
// it.
type Violation struct {
	Invariant string // "causal-fire", "dup-terminal", "lamport-order", "announce-before-occurrence"
	Record    obs.Record
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (site=%s inst=%d seq=%d lam=%d)",
		v.Invariant, v.Detail, v.Record.Site, v.Record.Inst, v.Record.Seq, v.Record.Lamport)
}

type siteInst struct {
	site string
	inst uint32
}

type symInst struct {
	sym  string
	inst uint32
}

// Trace checks all invariants over a capture (any record order; the
// per-stream checks order by sequence number internally via a stable
// pass, so pass Records() output or a merged stream alike).
func Trace(recs []obs.Record) []Violation {
	var out []Violation

	// Per-(site,inst) streams in emission order.  Records() yields
	// ascending Seq per tracer already; a merged multi-node stream may
	// interleave, so order explicitly.
	streams := map[siteInst][]obs.Record{}
	for _, r := range recs {
		k := siteInst{r.Site, r.Inst}
		streams[k] = append(streams[k], r)
	}
	for _, stream := range streams {
		sortBySeq(stream)
	}

	for _, stream := range streams {
		// 3. Monotone Lamport stamps per (site, instance).
		lastLam := int64(-1 << 62)
		// 1. Causal firing: enabling evidence seen so far, per symbol.
		enabled := map[string]bool{}
		for _, r := range stream {
			if r.Lamport < lastLam {
				out = append(out, Violation{
					Invariant: "lamport-order",
					Record:    r,
					Detail:    fmt.Sprintf("stamp %d after %d", r.Lamport, lastLam),
				})
			}
			lastLam = r.Lamport

			switch r.Kind {
			case obs.KindAttempt:
				if r.Verdict == "forced" {
					enabled[r.Sym] = true
				}
			case obs.KindEval:
				if r.Verdict == "true" || r.Verdict == "wave" {
					enabled[r.Sym] = true
				}
			case obs.KindFire:
				if !enabled[r.Sym] {
					out = append(out, Violation{
						Invariant: "causal-fire",
						Record:    r,
						Detail:    fmt.Sprintf("%s fired without prior enabling evaluation", r.Sym),
					})
				}
			case obs.KindAnnounce:
				// 4. No knowledge of an occurrence before its index.
				if r.Lamport < r.At {
					out = append(out, Violation{
						Invariant: "announce-before-occurrence",
						Record:    r,
						Detail:    fmt.Sprintf("%s@%d announced at clock %d", r.Sym, r.At, r.Lamport),
					})
				}
			}
		}
	}

	// 2. Terminal uniqueness per (symbol, instance), across sites: an
	// actor lives at one site, so duplicates within a site are protocol
	// bugs and duplicates across sites are routing bugs — both count.
	// A fire of both polarities of one event is the same invariant at
	// the event level (complement keys carry a "~" prefix).
	terminal := map[symInst]obs.Record{}
	fired := map[symInst]bool{}
	for _, r := range recs {
		if r.Kind != obs.KindFire && r.Kind != obs.KindReject {
			continue
		}
		k := symInst{r.Sym, r.Inst}
		if prev, dup := terminal[k]; dup {
			out = append(out, Violation{
				Invariant: "dup-terminal",
				Record:    r,
				Detail: fmt.Sprintf("%s %s after %s (seq %d)",
					r.Sym, r.Kind, prev.Kind, prev.Seq),
			})
			continue
		}
		terminal[k] = r
		if r.Kind == obs.KindFire {
			base := symInst{strings.TrimPrefix(r.Sym, "~"), r.Inst}
			if fired[base] {
				out = append(out, Violation{
					Invariant: "dup-terminal",
					Record:    r,
					Detail:    fmt.Sprintf("both polarities of %s fired", base.sym),
				})
			}
			fired[base] = true
		}
	}

	return out
}

func sortBySeq(stream []obs.Record) {
	// Insertion sort: streams arrive nearly sorted (per-tracer emission
	// order), where this is linear.
	for i := 1; i < len(stream); i++ {
		for j := i; j > 0 && stream[j].Seq < stream[j-1].Seq; j-- {
			stream[j], stream[j-1] = stream[j-1], stream[j]
		}
	}
}
