package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Record kinds: the protocol actions the decision tracer captures.
const (
	KindAttempt   = "attempt"   // an attempt reached the event's actor
	KindAnnounce  = "announce"  // an occurrence announcement was assimilated
	KindEval      = "eval"      // a guard was evaluated (Verdict: true/false/unknown/wave)
	KindResiduate = "residuate" // knowledge reduced the residual guard (Guard: new residual)
	KindFire      = "fire"      // the polarity occurred (At: occurrence index)
	KindReject    = "reject"    // the polarity was rejected (Verdict: reason)
)

// Record is one traced decision step.  Site and Inst identify where it
// happened; Lamport is the emitting transport's occurrence clock at
// emission time, which totally orders records consistently with
// causality across nodes; Seq is the per-tracer emission index, the
// deterministic tiebreak within a site.
type Record struct {
	Lamport int64  `json:"lam"`
	Site    string `json:"site"`
	Inst    uint32 `json:"inst,omitempty"`
	Kind    string `json:"kind"`
	Sym     string `json:"sym,omitempty"`
	At      int64  `json:"at,omitempty"`
	Guard   string `json:"guard,omitempty"`
	Verdict string `json:"verdict,omitempty"`
	Seq     uint64 `json:"seq"`
}

// Tracer collects records from any number of scopes.  The zero-cost
// requirement is concentrated in Scope.On and Scope.Emit: when the
// tracer is disabled, both are a nil check plus one atomic load —
// no locks, no allocation — so instrumentation stays compiled into
// the hot paths permanently.
//
// A tracer runs in one of two capture modes: ring (the default; the
// newest ringSize records are kept, older ones are dropped and
// counted) or full (everything is kept — the golden-replay and
// analysis mode).
type Tracer struct {
	enabled atomic.Bool
	insts   atomic.Uint32

	mu      sync.Mutex
	full    bool
	ringCap int
	recs    []Record
	next    int // ring write index once len(recs) == ringCap
	wrapped bool
	seq     uint64
	dropped int64
}

// NewTracer returns a disabled tracer with the given ring capacity
// (minimum 1).
func NewTracer(ringSize int) *Tracer {
	if ringSize < 1 {
		ringSize = 1
	}
	return &Tracer{ringCap: ringSize}
}

// shared is the process-wide tracer: attached to every actor that is
// not given an explicit one, disabled until a CLI flag or test enables
// it.  Keeping it attached everywhere is what the disabled fast path
// pays for — and why that path is benchmarked to zero allocations.
var shared = NewTracer(1 << 16)

// Shared returns the process-wide tracer.
func Shared() *Tracer { return shared }

// Enable turns capture on; full selects unbounded capture instead of
// the ring.  Switching modes resets the buffer.
func (t *Tracer) Enable(full bool) {
	t.mu.Lock()
	t.full = full
	t.recs = nil
	t.next = 0
	t.wrapped = false
	t.dropped = 0
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Disable turns capture off; collected records stay readable.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether capture is on.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Reset discards collected records and the sequence and instance-tag
// counters, so a fresh capture is deterministic from record zero.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recs = nil
	t.next = 0
	t.wrapped = false
	t.seq = 0
	t.dropped = 0
	t.insts.Store(0)
}

// NextInst allocates a fresh instance tag (0, 1, 2, ...).  Distinct
// executions captured by one tracer must carry distinct tags or the
// per-instance invariants (one terminal verdict per event) read their
// interleaved records as one run; harnesses that drive a workflow
// several times in-process (scheduler comparisons, benchmarks) call
// this once per run.  Reset restarts the allocation.
func (t *Tracer) NextInst() uint32 {
	return t.insts.Add(1) - 1
}

// Dropped returns the number of records the ring overwrote.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

func (t *Tracer) emit(r Record) {
	t.mu.Lock()
	r.Seq = t.seq
	t.seq++
	switch {
	case t.full || len(t.recs) < t.ringCap:
		t.recs = append(t.recs, r)
	default:
		t.recs[t.next] = r
		t.next = (t.next + 1) % t.ringCap
		t.wrapped = true
		t.dropped++
	}
	t.mu.Unlock()
}

// Records returns the collected records in emission order (oldest
// surviving record first).
func (t *Tracer) Records() []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, 0, len(t.recs))
	if t.wrapped {
		out = append(out, t.recs[t.next:]...)
		out = append(out, t.recs[:t.next]...)
		return out
	}
	return append(out, t.recs...)
}

// Scope stamps records with a fixed site and instance before handing
// them to the tracer.  A nil scope is valid and permanently off, so
// holders never need a nil check of their own.
type Scope struct {
	t    *Tracer
	site string
	inst uint32
}

// Scope derives a site/instance scope.  A nil tracer yields a nil
// (disabled) scope.
func (t *Tracer) Scope(site string, inst uint32) *Scope {
	if t == nil {
		return nil
	}
	return &Scope{t: t, site: site, inst: inst}
}

// On reports whether emissions would be recorded — the single-atomic-
// load gate call sites use to skip building record fields entirely.
func (s *Scope) On() bool { return s != nil && s.t.enabled.Load() }

// Emit records one step, stamping the scope's site and instance.
func (s *Scope) Emit(r Record) {
	if s == nil || !s.t.enabled.Load() {
		return
	}
	r.Site, r.Inst = s.site, s.inst
	s.t.emit(r)
}

// SortCausal orders records by (Lamport, Site, Inst, Seq): a total
// order consistent with the transports' occurrence clock, with the
// deterministic per-tracer sequence as the final tiebreak.  Merging
// the per-node captures of a distributed run and sorting them this way
// yields one causally-ordered stream.
func SortCausal(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Lamport != b.Lamport {
			return a.Lamport < b.Lamport
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		if a.Inst != b.Inst {
			return a.Inst < b.Inst
		}
		return a.Seq < b.Seq
	})
}

// Merge combines several captures into one causally-ordered stream.
func Merge(captures ...[]Record) []Record {
	var n int
	for _, c := range captures {
		n += len(c)
	}
	out := make([]Record, 0, n)
	for _, c := range captures {
		out = append(out, c...)
	}
	SortCausal(out)
	return out
}

// AppendJSON appends one record as a single JSON line (no trailing
// newline) with a fixed field order — the deterministic encoding the
// golden-replay tests compare byte-for-byte.
func AppendJSON(dst []byte, r Record) []byte {
	dst = append(dst, `{"lam":`...)
	dst = strconv.AppendInt(dst, r.Lamport, 10)
	dst = append(dst, `,"site":`...)
	dst = strconv.AppendQuote(dst, r.Site)
	if r.Inst != 0 {
		dst = append(dst, `,"inst":`...)
		dst = strconv.AppendUint(dst, uint64(r.Inst), 10)
	}
	dst = append(dst, `,"kind":`...)
	dst = strconv.AppendQuote(dst, r.Kind)
	if r.Sym != "" {
		dst = append(dst, `,"sym":`...)
		dst = strconv.AppendQuote(dst, r.Sym)
	}
	if r.At != 0 {
		dst = append(dst, `,"at":`...)
		dst = strconv.AppendInt(dst, r.At, 10)
	}
	if r.Guard != "" {
		dst = append(dst, `,"guard":`...)
		dst = strconv.AppendQuote(dst, r.Guard)
	}
	if r.Verdict != "" {
		dst = append(dst, `,"verdict":`...)
		dst = strconv.AppendQuote(dst, r.Verdict)
	}
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, r.Seq, 10)
	return append(dst, '}')
}

// WriteJSONL writes records as JSON lines.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, r := range recs {
		buf = AppendJSON(buf[:0], r)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL stream written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(text, &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
