//go:build race

package obs

// raceEnabled reports whether the race detector instruments this
// build; its shadow-memory hooks allocate in instrumented code paths,
// which breaks allocation-count assertions.
const raceEnabled = true
