// Package obs is the repository's observability layer: a
// dependency-free metrics registry (atomic counters, gauges, bounded
// histograms) and a structured decision tracer ordered by the
// transports' Lamport occurrence clock.
//
// Both halves follow the same discipline: recording must be cheap
// enough to leave compiled into the hot paths.  Counters and gauges
// are single atomic adds; histograms are an atomic add into a fixed
// bucket; the tracer's disabled fast path is one atomic load and no
// allocation, proven by a benchmark guard in trace_test.go.
//
// Everything else — snapshotting, diffing, JSON encoding, merge
// sorting — happens off the hot path, on whatever goroutine asks.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotone event count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, active instances).
type Gauge struct{ v atomic.Int64 }

// Set stores an absolute level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a bounded histogram with fixed bucket boundaries: an
// observation lands in the first bucket whose upper bound it does not
// exceed, or in the implicit overflow bucket.  Boundaries are fixed at
// registration, so observation is one binary search plus one atomic
// add — no locks, no allocation.
type Histogram struct {
	bounds  []int64 // ascending upper bounds (inclusive)
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Registry holds named metrics.  Registration (get-or-create) takes a
// mutex; the returned metric handles are lock-free, so hot paths
// register once in a package var and only ever touch atomics.
type Registry struct {
	mu sync.Mutex
	m  map[string]any // *Counter | *Gauge | *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: map[string]any{}} }

// Default is the process-wide registry the built-in instrumentation
// registers into; /debug/metrics and the CLI exporters read it.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.  It
// panics if the name is already registered as a different kind.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.m[name]; ok {
		c, ok := v.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q registered as %T, not counter", name, v))
		}
		return c
	}
	c := &Counter{}
	r.m[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.m[name]; ok {
		g, ok := v.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q registered as %T, not gauge", name, v))
		}
		return g
	}
	g := &Gauge{}
	r.m[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bucket bounds on first use.  Later calls reuse the
// original bounds.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.m[name]; ok {
		h, ok := v.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q registered as %T, not histogram", name, v))
		}
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{bounds: append([]int64(nil), bounds...)}
	h.buckets = make([]atomic.Int64, len(bounds)+1)
	r.m[name] = h
	return h
}

// C, G, and H register into the Default registry — the one-liner form
// for package-level metric vars.
func C(name string) *Counter { return Default.Counter(name) }

// G registers a gauge in the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H registers a histogram in the Default registry.
func H(name string, bounds ...int64) *Histogram { return Default.Histogram(name, bounds...) }

// Metric is one metric's frozen state inside a Snapshot.
type Metric struct {
	Kind  string // "counter", "gauge", or "histogram"
	Value int64  // counter count or gauge level
	// Histogram state; Bounds has one fewer entry than Buckets (the
	// last bucket is the overflow).
	Count, Sum int64
	Bounds     []int64
	Buckets    []int64
}

// Snapshot is a point-in-time copy of a registry, safe to read and
// diff while the live metrics keep moving.
type Snapshot struct {
	Metrics map[string]Metric
}

// Snapshot freezes the registry.  Multi-word metrics (histograms) are
// read field-by-field without a global lock, so a snapshot taken
// mid-update may be off by in-flight observations — each field is
// still individually consistent, which is all diffing needs.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.m))
	handles := make([]any, 0, len(r.m))
	for name, v := range r.m {
		names = append(names, name)
		handles = append(handles, v)
	}
	r.mu.Unlock()

	s := Snapshot{Metrics: make(map[string]Metric, len(names))}
	for i, name := range names {
		switch v := handles[i].(type) {
		case *Counter:
			s.Metrics[name] = Metric{Kind: "counter", Value: v.Value()}
		case *Gauge:
			s.Metrics[name] = Metric{Kind: "gauge", Value: v.Value()}
		case *Histogram:
			m := Metric{
				Kind:   "histogram",
				Count:  v.count.Load(),
				Sum:    v.sum.Load(),
				Bounds: append([]int64(nil), v.bounds...),
			}
			m.Buckets = make([]int64, len(v.buckets))
			for j := range v.buckets {
				m.Buckets[j] = v.buckets[j].Load()
			}
			s.Metrics[name] = m
		}
	}
	return s
}

// Get returns one metric from the snapshot.
func (s Snapshot) Get(name string) (Metric, bool) {
	m, ok := s.Metrics[name]
	return m, ok
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of a histogram metric
// by linear interpolation inside the bucket holding the target rank:
// the usual bounded-histogram estimator, exact at bucket boundaries
// and within one bucket's width elsewhere.  Observations in the
// overflow bucket report the last finite bound (the estimator cannot
// see past it).  Returns 0 for empty or non-histogram metrics.
func (m Metric) Quantile(q float64) float64 {
	if m.Kind != "histogram" || m.Count <= 0 || len(m.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(m.Count)
	var cum int64
	for i, b := range m.Buckets {
		prev := cum
		cum += b
		if float64(cum) < rank {
			continue
		}
		if i >= len(m.Bounds) {
			return float64(m.Bounds[len(m.Bounds)-1])
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(m.Bounds[i-1])
		}
		hi := float64(m.Bounds[i])
		if b == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(b)
		return lo + frac*(hi-lo)
	}
	return float64(m.Bounds[len(m.Bounds)-1])
}

// Diff returns this snapshot minus an earlier one: counters and
// histogram counts subtract (the work done in between), gauges keep
// their current level (a level has no meaningful delta).  Metrics
// absent from the earlier snapshot diff against zero.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{Metrics: make(map[string]Metric, len(s.Metrics))}
	for name, cur := range s.Metrics {
		old, ok := prev.Metrics[name]
		if !ok || old.Kind != cur.Kind {
			old = Metric{}
		}
		switch cur.Kind {
		case "counter":
			cur.Value -= old.Value
		case "histogram":
			cur.Count -= old.Count
			cur.Sum -= old.Sum
			buckets := append([]int64(nil), cur.Buckets...)
			for i := range buckets {
				if i < len(old.Buckets) {
					buckets[i] -= old.Buckets[i]
				}
			}
			cur.Buckets = buckets
		}
		out.Metrics[name] = cur
	}
	return out
}

// WriteJSON writes the snapshot as one JSON object, metrics sorted by
// name — a deterministic, dependency-free encoding for /debug/metrics
// and the CLI exporters.
func (s Snapshot) WriteJSON(w io.Writer) error {
	names := make([]string, 0, len(s.Metrics))
	for name := range s.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	buf := []byte("{")
	for i, name := range names {
		if i > 0 {
			buf = append(buf, ',')
		}
		m := s.Metrics[name]
		buf = strconv.AppendQuote(buf, name)
		buf = append(buf, `:{"kind":`...)
		buf = strconv.AppendQuote(buf, m.Kind)
		switch m.Kind {
		case "histogram":
			buf = append(buf, `,"count":`...)
			buf = strconv.AppendInt(buf, m.Count, 10)
			buf = append(buf, `,"sum":`...)
			buf = strconv.AppendInt(buf, m.Sum, 10)
			buf = append(buf, `,"bounds":`...)
			buf = appendInts(buf, m.Bounds)
			buf = append(buf, `,"buckets":`...)
			buf = appendInts(buf, m.Buckets)
		default:
			buf = append(buf, `,"value":`...)
			buf = strconv.AppendInt(buf, m.Value, 10)
		}
		buf = append(buf, '}')
	}
	buf = append(buf, "}\n"...)
	_, err := w.Write(buf)
	return err
}

func appendInts(dst []byte, vs []int64) []byte {
	dst = append(dst, '[')
	for i, v := range vs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, v, 10)
	}
	return append(dst, ']')
}
