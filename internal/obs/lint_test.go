package obs_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoFmtPrintInInternal forbids fmt.Print / Printf / Println in
// non-test files under internal/.  Library code talks through returned
// errors, the hooks, or the obs tracer — never by writing to the
// process's stdout, which the CLIs own.  (The cmd/ mains and test
// files are exempt.)
func TestNoFmtPrintInInternal(t *testing.T) {
	internalRoot, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	err = filepath.WalkDir(internalRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "fmt" {
				return true
			}
			switch sel.Sel.Name {
			case "Print", "Printf", "Println":
				t.Errorf("%s: fmt.%s in internal package (route output through errors, hooks, or obs)",
					fset.Position(sel.Pos()), sel.Sel.Name)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
