package obs

import "net/http"

// MetricsHandler serves a registry snapshot as JSON — the body behind
// /debug/metrics on the wfnet listener.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot().WriteJSON(w)
	})
}
