package obs

import (
	"math"
	"testing"
)

func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 10, 20, 50, 100)
	// 100 observations uniform over (0,100]: ~10 per unit decade.
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	m, _ := r.Snapshot().Get("lat")
	// Exact at bucket boundaries: rank 10 is the top of bucket 0.
	if got := m.Quantile(0.10); math.Abs(got-10) > 0.01 {
		t.Errorf("p10 = %v, want 10", got)
	}
	if got := m.Quantile(0.50); math.Abs(got-50) > 0.01 {
		t.Errorf("p50 = %v, want 50", got)
	}
	// Interpolated inside the (20,50] bucket: rank 35 is halfway.
	if got := m.Quantile(0.35); math.Abs(got-35) > 0.01 {
		t.Errorf("p35 = %v, want 35", got)
	}
	if got := m.Quantile(1); math.Abs(got-100) > 0.01 {
		t.Errorf("p100 = %v, want 100", got)
	}

	// Overflow observations clamp to the last finite bound.
	h.Observe(10_000)
	m, _ = r.Snapshot().Get("lat")
	if got := m.Quantile(1); got != 100 {
		t.Errorf("overflow p100 = %v, want clamp to 100", got)
	}

	// Degenerate inputs.
	if got := (Metric{}).Quantile(0.5); got != 0 {
		t.Errorf("empty metric quantile = %v", got)
	}
	c := r.Counter("n")
	c.Inc()
	cm, _ := r.Snapshot().Get("n")
	if got := cm.Quantile(0.5); got != 0 {
		t.Errorf("counter quantile = %v", got)
	}
}
