package obs

import (
	"reflect"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("x") != c {
		t.Fatal("re-registration returned a different handle")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 10, 100, 1000)
	for _, v := range []int64{5, 10, 11, 100, 500, 99999} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 5+10+11+100+500+99999 {
		t.Fatalf("sum = %d", got)
	}
	m, _ := r.Snapshot().Get("lat")
	// Bounds are inclusive upper bounds; the last bucket is overflow.
	want := []int64{2, 2, 1, 1}
	if !reflect.DeepEqual(m.Buckets, want) {
		t.Fatalf("buckets = %v, want %v", m.Buckets, want)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge re-registration of a counter name did not panic")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	r.Histogram("h", 10, 10)
}

func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(1)
	snap := r.Snapshot()
	c.Add(10)
	if m, _ := snap.Get("c"); m.Value != 1 {
		t.Fatalf("snapshot moved with the live counter: %d", m.Value)
	}
}

func TestDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", 10, 100)

	c.Add(5)
	g.Set(3)
	h.Observe(7)
	before := r.Snapshot()

	c.Add(2)
	g.Set(9)
	h.Observe(50)
	h.Observe(500)
	d := r.Snapshot().Diff(before)

	if m, _ := d.Get("c"); m.Value != 2 {
		t.Errorf("counter diff = %d, want 2", m.Value)
	}
	// Gauges are levels: the diff keeps the current reading.
	if m, _ := d.Get("g"); m.Value != 9 {
		t.Errorf("gauge diff = %d, want current level 9", m.Value)
	}
	m, _ := d.Get("h")
	if m.Count != 2 || m.Sum != 550 {
		t.Errorf("histogram diff count=%d sum=%d, want 2/550", m.Count, m.Sum)
	}
	if want := []int64{0, 1, 1}; !reflect.DeepEqual(m.Buckets, want) {
		t.Errorf("histogram diff buckets = %v, want %v", m.Buckets, want)
	}
}

func TestDiffAbsentMetricUsesZero(t *testing.T) {
	r := NewRegistry()
	before := r.Snapshot()
	r.Counter("late").Add(4)
	d := r.Snapshot().Diff(before)
	if m, _ := d.Get("late"); m.Value != 4 {
		t.Fatalf("late-registered counter diff = %d, want 4", m.Value)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Gauge("a.level").Set(-1)
	r.Histogram("c.hist", 1, 2).Observe(2)

	var one, two strings.Builder
	snap := r.Snapshot()
	if err := snap.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatal("two encodings of one snapshot differ")
	}
	want := `{"a.level":{"kind":"gauge","value":-1},` +
		`"b.count":{"kind":"counter","value":2},` +
		`"c.hist":{"kind":"histogram","count":1,"sum":2,"bounds":[1,2],"buckets":[0,1,0]}}` + "\n"
	if got := one.String(); got != want {
		t.Fatalf("encoding:\n got %s want %s", got, want)
	}
}
