package obs_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/workload"

	// Linked for their metric registrations alone: importing the
	// instrumented packages is what populates the Default registry.
	_ "repro/internal/netwire"
	_ "repro/internal/param"
)

// registered lists every metric the instrumented packages declare, by
// name and kind.  A rename or removal must be reflected here (and in
// README.md's flag matrix) or this test fails.
var registered = map[string]string{
	"actor.attempts":          "counter",
	"actor.announcements":     "counter",
	"actor.fires":             "counter",
	"actor.rejects":           "counter",
	"actor.inquiries":         "counter",
	"sched.attempts":          "counter",
	"synth.calls":             "counter",
	"synth.cache_hits":        "counter",
	"netwire.retransmits":     "counter",
	"netwire.queue_depth":     "gauge",
	"netwire.batch_frames":    "histogram",
	"engine.instances":        "counter",
	"engine.instance_us":      "histogram",
	"param.evals":             "counter",
	"param.instance_rechecks": "counter",
}

func TestDefaultRegistryCoverage(t *testing.T) {
	snap := obs.Default.Snapshot()
	for name, kind := range registered {
		m, ok := snap.Get(name)
		if !ok {
			t.Errorf("metric %s not registered", name)
			continue
		}
		if m.Kind != kind {
			t.Errorf("metric %s registered as %s, want %s", name, m.Kind, kind)
		}
	}
}

// TestHotPathsMoveMetrics drives one scheduler run and one engine run
// and asserts the instrumented counters actually advanced — the
// instrumentation is wired into the paths it claims to measure.
func TestHotPathsMoveMetrics(t *testing.T) {
	before := obs.Default.Snapshot()

	wl := workload.Chain(6, 3)
	if _, err := sched.Run(wl.Config(sched.Distributed, 1)); err != nil {
		t.Fatal(err)
	}
	sp, err := spec.ParseString(`workflow w
dep ~b + a . b
event a site=s1
event b site=s2
agent g site=s1
  step a think=5
  step b think=10
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(sp, engine.Options{Instances: 2, Seed: 7}); err != nil {
		t.Fatal(err)
	}

	diff := obs.Default.Snapshot().Diff(before)
	for _, name := range []string{
		"actor.attempts", "actor.announcements", "actor.fires",
		"sched.attempts", "synth.calls", "engine.instances",
	} {
		m, _ := diff.Get(name)
		if m.Value <= 0 && m.Count <= 0 {
			t.Errorf("metric %s did not move during the runs", name)
		}
	}
	if m, _ := diff.Get("engine.instance_us"); m.Count != 2 {
		t.Errorf("engine.instance_us observed %d instances, want 2", m.Count)
	}
}
