package wal

import (
	"path/filepath"
	"testing"
)

func TestSafeSegment(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "default"},
		{"acme", "acme"},
		{"Team-7_v2.1", "Team-7_v2.1"},
		{"../../etc", "_._.._etc"},
		{".hidden", "_hidden"},
		{"a/b\\c", "a_b_c"},
		{"tenant name!", "tenant_name_"},
		{"ünïcode", "__n__code"},
	}
	for _, c := range cases {
		if got := SafeSegment(c.in); got != c.want {
			t.Errorf("SafeSegment(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTenantDir(t *testing.T) {
	got := TenantDir("/var/wal", "acme", "shard-0")
	want := filepath.Join("/var/wal", "acme", "shard-0")
	if got != want {
		t.Errorf("TenantDir = %q, want %q", got, want)
	}
	// Hostile tenant names stay inside root.
	got = TenantDir("/var/wal", "../escape", "registry")
	if filepath.Dir(filepath.Dir(got)) != "/var/wal" {
		t.Errorf("hostile tenant escaped root: %q", got)
	}
	// Distinct tenants never collide on the same directory.
	if TenantDir("/r", "a", "x") == TenantDir("/r", "b", "x") {
		t.Error("distinct tenants collided")
	}
}

// TestServeRoundTrip: serving-layer records survive a close/reopen
// cycle and come back in order through Recovery.Serve, interleaved
// transport records still folding into their own fields.
func TestServeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Kind: KSpecReg, Site: "acme", Sym: "travel", Payload: []byte("workflow travel\n")})
	l.Append(Record{Kind: KAdmit, Seq: 7, Site: "acme", Sym: "travel", Note: "external", At: 42})
	l.Append(Record{Kind: KFire, Site: "s1", Sym: "e", At: 3}) // transport record interleaved
	l.Append(Record{Kind: KEvent, Seq: 7, Sym: "book", Note: "forced"})
	l.Append(Record{Kind: KDone, Seq: 7, Note: "fp:abc"})
	l.Sync()
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rec := l2.Recovery()
	if rec.Empty() {
		t.Fatal("recovery empty after serve appends")
	}
	if len(rec.Serve) != 4 {
		t.Fatalf("Serve has %d records, want 4: %+v", len(rec.Serve), rec.Serve)
	}
	wantKinds := []byte{KSpecReg, KAdmit, KEvent, KDone}
	for i, r := range rec.Serve {
		if r.Kind != wantKinds[i] {
			t.Errorf("Serve[%d].Kind = %s, want %s", i, ServeKindName(r.Kind), ServeKindName(wantKinds[i]))
		}
	}
	if rec.Serve[1].Seq != 7 || rec.Serve[1].At != 42 || rec.Serve[1].Note != "external" {
		t.Errorf("KAdmit fields lost: %+v", rec.Serve[1])
	}
	if string(rec.Serve[0].Payload) != "workflow travel\n" {
		t.Errorf("KSpecReg payload lost: %q", rec.Serve[0].Payload)
	}
	if len(rec.Fires) != 1 || rec.Fires[0] != 3 {
		t.Errorf("interleaved KFire mis-folded: %v", rec.Fires)
	}
}
