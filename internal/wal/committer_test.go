package wal

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCommitterCoalesces opens several logs on one committer, appends
// to all of them concurrently, and checks (a) every record is durable
// and survives reopen, (b) the committer spent far fewer rounds than
// there were records — i.e. cross-log coalescing actually happened.
func TestCommitterCoalesces(t *testing.T) {
	root := t.TempDir()
	c := NewCommitter(CommitterOptions{Interval: 2 * time.Millisecond})
	const L, N = 6, 40
	logs := make([]*Log, L)
	for i := range logs {
		l, err := Open(filepath.Join(root, fmt.Sprint("log", i)), Options{Committer: c})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		logs[i] = l
	}
	var wg sync.WaitGroup
	for _, l := range logs {
		wg.Add(1)
		go func(l *Log) {
			defer wg.Done()
			var last uint64
			for i := 0; i < N; i++ {
				last = l.Append(Record{Kind: KFire, Site: "a", Sym: "x", At: int64(i)})
			}
			l.WaitDurable(last)
		}(l)
	}
	wg.Wait()
	rounds := c.Rounds()
	if rounds == 0 || rounds >= L*N {
		t.Fatalf("rounds = %d, want coalescing (0 < rounds < %d)", rounds, L*N)
	}
	for _, l := range logs {
		l.Close()
	}
	c.Close()
	for i := range logs {
		l, err := Open(filepath.Join(root, fmt.Sprint("log", i)), Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if got := len(l.Recovery().Fires); got != N {
			t.Fatalf("log %d recovered %d fires, want %d", i, got, N)
		}
		l.Close()
	}
}

// TestCommitterChurn churns registration: logs open, append, wait, and
// close continuously while others do the same on the shared committer.
// Run under -race this exercises the register/unregister/nudge/commit
// interleavings; the invariant is simply that every WaitDurable
// returns and every closed log's records are on disk.
func TestCommitterChurn(t *testing.T) {
	root := t.TempDir()
	c := NewCommitter(CommitterOptions{})
	defer c.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	const G, rounds, perLog = 4, 8, 16
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				dir := filepath.Join(root, fmt.Sprintf("g%dr%d", g, r))
				l, err := Open(dir, Options{Committer: c})
				if err != nil {
					t.Errorf("Open: %v", err)
					return
				}
				var last uint64
				for i := 0; i < perLog; i++ {
					last = l.Append(Record{Kind: KFire, Site: "a", Sym: "x", At: int64(i)})
				}
				l.WaitDurable(last)
				l.Close()
				total.Add(perLog)
			}
		}(g)
	}
	wg.Wait()
	if total.Load() != G*rounds*perLog {
		t.Fatalf("total = %d, want %d", total.Load(), G*rounds*perLog)
	}
	// Spot-check one log per goroutine survives reopen in full.
	for g := 0; g < G; g++ {
		l, err := Open(filepath.Join(root, fmt.Sprintf("g%dr%d", g, rounds-1)), Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if got := len(l.Recovery().Fires); got != perLog {
			t.Fatalf("g%d recovered %d fires, want %d", g, got, perLog)
		}
		l.Close()
	}
}

// TestNotify pins the notification contract: a future LSN fires after
// the group commit covering it, an already-durable LSN fires inline,
// and Close releases anything still parked.
func TestNotify(t *testing.T) {
	l := openT(t, t.TempDir())
	lsn := l.Append(Record{Kind: KFire, Site: "a", Sym: "x", At: 1})
	ch := make(chan uint64, 3)
	l.Notify(lsn, func() { ch <- 1 })
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("notify on pending LSN never fired")
	}
	if l.Durable() < lsn {
		t.Fatalf("notify fired before durable: durable=%d lsn=%d", l.Durable(), lsn)
	}
	// Already durable: fires inline.
	fired := false
	l.Notify(lsn, func() { fired = true })
	if !fired {
		t.Fatal("notify on durable LSN did not fire inline")
	}
	// Parked past the end of the log: Close must release it.
	l.Notify(lsn+100, func() { ch <- 2 })
	l.Close()
	select {
	case v := <-ch:
		if v != 2 {
			t.Fatalf("unexpected notification %d", v)
		}
	default:
		t.Fatal("Close left a notification parked")
	}
}

// TestCommitterCloseEarly violates the close order on purpose: closing
// the committer while logs are still open and appending must hand each
// log back its own flusher, so no append is stranded un-durable.
func TestCommitterCloseEarly(t *testing.T) {
	root := t.TempDir()
	c := NewCommitter(CommitterOptions{})
	logs := make([]*Log, 3)
	for i := range logs {
		l, err := Open(filepath.Join(root, fmt.Sprint("log", i)), Options{Committer: c})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		logs[i] = l
	}
	for _, l := range logs {
		l.Append(Record{Kind: KFire, Site: "a", Sym: "x", At: 1})
	}
	c.Close() // logs detach, regain their own flushers
	for _, l := range logs {
		lsn := l.Append(Record{Kind: KFire, Site: "a", Sym: "y", At: 2})
		l.WaitDurable(lsn)
		l.Close()
	}
	for i := range logs {
		l, err := Open(filepath.Join(root, fmt.Sprint("log", i)), Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if got := len(l.Recovery().Fires); got != 2 {
			t.Fatalf("log %d recovered %d fires, want 2", i, got)
		}
		l.Close()
	}
}

// TestWALAppendZeroAlloc gates the append hot path: once the buffer
// recycling warms up, Append must not allocate.  (The benchsmoke gate
// alongside the announce/encode zero-alloc contracts.)
func TestWALAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	l, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	rec := Record{Kind: KFire, Site: "site-a", Sym: "event", At: 7}
	// Warm up the two recycled buffers (buf/spare ping-pong through the
	// flusher) well past the measured run's worst-case backlog, so no
	// append can outgrow a buffer mid-measurement.
	big := Record{Kind: KFire, Site: "site-a", Sym: "event", Payload: make([]byte, 512<<10)}
	for i := 0; i < 4; i++ {
		l.WaitDurable(l.Append(big))
	}
	l.WaitDurable(l.Append(rec))
	if avg := testing.AllocsPerRun(2000, func() { l.Append(rec) }); avg != 0 {
		t.Fatalf("Append allocates %v times per record, want 0", avg)
	}
}
