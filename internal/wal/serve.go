package wal

import (
	"fmt"
	"path/filepath"
	"strings"
)

// Serving-layer record kinds (internal/serve).  The serving daemon
// journals its control plane — spec registrations, instance
// admissions, external announcements, completions — into per-tenant
// logs using the same framed codec as the transport records, so one
// recovery scanner serves both layers.  Values continue the transport
// kind sequence and are append-only: a kind, once assigned, never
// changes meaning.
const (
	// KSpecReg records a spec registration: Site = tenant, Sym = spec
	// name, Payload = the .wf source.  Replay re-registers (last write
	// wins, in log order).
	KSpecReg byte = KSnapSite + 1 + iota
	// KAdmit records an admitted instance: Seq = instance id, Site =
	// tenant, Sym = spec name, Note = mode ("scripted" or "external"),
	// At = seed.  An admit without a matching KDone is in-flight at
	// crash and is re-run (scripted) or re-opened (external) on
	// recovery.
	KAdmit
	// KEvent records one external announcement into a running
	// instance: Seq = instance id, Sym = event symbol, Note = "forced"
	// when the attempt was forced.  Replayed in log order to rebuild
	// the instance's observed-announcement state.
	KEvent
	// KDone records instance completion: Seq = instance id, Note =
	// outcome fingerprint.  Closes the matching KAdmit.
	KDone
)

// SafeSegment maps an arbitrary tenant or shard name to a string safe
// to use as one path segment: empty becomes "default", and anything
// outside [A-Za-z0-9._-] (plus leading dots, which would hide the
// directory or escape it) is replaced with '_'.  The mapping is
// deterministic so the same tenant always lands in the same directory
// across restarts.
func SafeSegment(name string) string {
	if name == "" {
		return "default"
	}
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteByte(c)
		case c == '.' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// TenantDir resolves the log directory for one named log (a shard or
// the registry) of one tenant under root: root/<tenant>/<name>, both
// segments sanitized.  Per-tenant namespacing keeps one tenant's
// journal growth, snapshots, and recovery scans from touching another
// tenant's files.
func TenantDir(root, tenant, name string) string {
	return filepath.Join(root, SafeSegment(tenant), SafeSegment(name))
}

// ServeKindName names a serving-layer kind for diagnostics.
func ServeKindName(k byte) string {
	switch k {
	case KSpecReg:
		return "specreg"
	case KAdmit:
		return "admit"
	case KEvent:
		return "event"
	case KDone:
		return "done"
	default:
		return fmt.Sprintf("kind%d", k)
	}
}
