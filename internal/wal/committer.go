package wal

import (
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Committer is a shared fsync scheduler: every log opened with
// Options{Committer: c} registers here instead of running its own
// flush loop, and the committer drains them in coalesced rounds.  One
// round claims every dirty log's pending buffer, writes them all
// (page-cache speed), overlaps their fsyncs on a bounded worker pool,
// and then releases every parked waiter and durability notification
// across every log at once.  N busy logs therefore cost one round of
// overlapped fsyncs per interval instead of N independent fsync
// loops, which is what lets many per-tenant logs on one serve shard
// amortize a single commit window.
//
// Lifecycle: close the logs first, then the committer.  Closing the
// committer early is safe — still-registered logs detach and fall
// back to their own flusher goroutines — but forfeits coalescing.
type Committer struct {
	interval time.Duration
	parallel int

	mu     sync.Mutex
	cond   *sync.Cond
	logs   map[*Log]bool // registered → currently in the dirty queue
	dirty  []*Log
	spare  []*Log // recycled dirty-queue backing array
	closed bool
	done   chan struct{}

	rounds atomic.Int64
}

// CommitterOptions configure a Committer.
type CommitterOptions struct {
	// Interval, when positive, is how long a round waits after the
	// first pending append before committing, widening the group.
	// Zero commits as soon as the loop is free — fsync latency itself
	// batches concurrent appenders.
	Interval time.Duration
	// Parallel bounds concurrent fsyncs per round (default 8).
	Parallel int
}

// NewCommitter starts a shared commit loop.
func NewCommitter(opts CommitterOptions) *Committer {
	c := &Committer{
		interval: opts.Interval,
		parallel: opts.Parallel,
		logs:     map[*Log]bool{},
		done:     make(chan struct{}),
	}
	if c.parallel <= 0 {
		c.parallel = 8
	}
	c.cond = sync.NewCond(&c.mu)
	go c.loop()
	return c
}

// Rounds counts completed commit rounds (a round may fsync several
// logs; per-log fsync counts stay on Log.Syncs).
func (c *Committer) Rounds() int64 { return c.rounds.Load() }

// register adds a log; false means the committer is already closed
// and the log should flush itself.
func (c *Committer) register(l *Log) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	c.logs[l] = false
	return true
}

// unregister removes a closed log.
func (c *Committer) unregister(l *Log) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.logs, l)
	for i, d := range c.dirty {
		if d == l {
			c.dirty = append(c.dirty[:i], c.dirty[i+1:]...)
			break
		}
	}
}

// nudge marks a log dirty and wakes the loop.  Idempotent per round.
func (c *Committer) nudge(l *Log) {
	c.mu.Lock()
	if inDirty, registered := c.logs[l]; registered && !inDirty && !c.closed {
		c.logs[l] = true
		c.dirty = append(c.dirty, l)
		c.cond.Signal()
	}
	c.mu.Unlock()
}

// Close stops the loop after a final round.  Logs still registered
// (close order violated) detach and regain their own flushers, so no
// pending append is ever stranded.
func (c *Committer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var leftover []*Log
	for l := range c.logs {
		leftover = append(leftover, l)
	}
	c.logs = map[*Log]bool{}
	c.dirty = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, l := range leftover {
		l.mu.Lock()
		l.committer = nil
		stillOpen := !l.closed
		l.mu.Unlock()
		if stillOpen {
			go l.flusher()
		}
	}
	<-c.done
}

// loop is the round scheduler: wait for dirt, optionally widen the
// batch, then commit the claimed set.
func (c *Committer) loop() {
	defer close(c.done)
	for {
		c.mu.Lock()
		for len(c.dirty) == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed && len(c.dirty) == 0 {
			c.mu.Unlock()
			return
		}
		if c.interval > 0 && !c.closed {
			c.mu.Unlock()
			time.Sleep(c.interval)
			c.mu.Lock()
		}
		batch := c.dirty
		if c.spare != nil {
			c.dirty = c.spare[:0]
			c.spare = nil
		} else {
			c.dirty = nil
		}
		for _, l := range batch {
			if _, ok := c.logs[l]; ok {
				c.logs[l] = false
			}
		}
		c.mu.Unlock()
		c.commit(batch)
		c.mu.Lock()
		if c.spare == nil {
			c.spare = batch[:0]
		}
		c.mu.Unlock()
	}
}

// commit runs one round over the claimed logs: claim + write each
// log's pending bytes in claim order, overlap the fsyncs, then
// advance every durable LSN and fire the released notifications.
func (c *Committer) commit(batch []*Log) {
	type pend struct {
		l      *Log
		f      *os.File
		data   []byte
		lsn    uint64
		synced bool
	}
	start := time.Now()
	pends := make([]pend, 0, len(batch))
	for _, l := range batch {
		f, data, lsn, ok := l.takePending()
		if !ok {
			// Raced a detach handoff mid-flush: if bytes are still
			// pending, queue the log for the next round.
			if l.hasPending() {
				c.nudge(l)
			}
			continue
		}
		wrote := false
		if _, err := f.Write(data); err == nil {
			wrote = true
		}
		pends = append(pends, pend{l: l, f: f, data: data, lsn: lsn, synced: wrote && !l.opts.NoSync})
	}
	// Overlap the fsyncs: one goroutine per log up to the parallel
	// bound.  On one spindle the kernel merges the flushes; on real
	// arrays they genuinely proceed in parallel.  Either way every
	// waiter parked on any of these logs shares this one commit
	// window.  A round with a single flush syncs inline — no goroutine,
	// no semaphore.
	nsync := 0
	for i := range pends {
		if pends[i].synced {
			nsync++
		}
	}
	if nsync == 1 {
		for i := range pends {
			if pends[i].synced && pends[i].f.Sync() != nil {
				pends[i].synced = false
			}
		}
	} else if nsync > 1 {
		sem := make(chan struct{}, c.parallel)
		var wg sync.WaitGroup
		for i := range pends {
			if !pends[i].synced {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(p *pend) {
				defer wg.Done()
				if p.f.Sync() != nil {
					p.synced = false
				}
				<-sem
			}(&pends[i])
		}
		wg.Wait()
	}
	dt := time.Since(start)
	for i := range pends {
		p := &pends[i]
		p.l.observeRate(int64(p.lsn-p.l.durable.Load()), dt)
		p.l.finishCommit(p.data, p.lsn, p.synced)
	}
	if len(pends) > 0 {
		c.rounds.Add(1)
		mRounds.Inc()
		mRoundLogs.Observe(int64(len(pends)))
	}
}
