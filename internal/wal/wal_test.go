package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

// TestRoundTrip appends one record of each kind, reopens, and checks
// the recovery reflects them exactly.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	l.Append(Record{Kind: KIn, Site: "b", Peer: "a", Seq: 1, Clock: 7, Payload: []byte("m1")})
	l.Append(Record{Kind: KIn, Site: "b", Site2: "b", Payload: []byte("loc")})
	l.Append(Record{Kind: KFire, Site: "b", Sym: "e", At: 42})
	l.Append(Record{Kind: KOut, Site: "b", Site2: "c", Seq: 1, Payload: []byte("o1")})
	l.Append(Record{Kind: KOut, Site: "b", Site2: "c", Seq: 2, Payload: []byte("o2")})
	l.Append(Record{Kind: KAck, Site2: "c", Seq: 1})
	l.Append(Record{Kind: KReject, Site: "b", Sym: "~e", Note: "complement"})
	l.Close()

	l2 := openT(t, dir)
	defer l2.Close()
	rec := l2.Recovery()
	if rec.Empty() {
		t.Fatal("recovery empty")
	}
	if len(rec.Ins) != 2 || string(rec.Ins[0].Payload) != "m1" || string(rec.Ins[1].Payload) != "loc" {
		t.Fatalf("Ins = %+v", rec.Ins)
	}
	if rec.Ins[0].Clock != 7 || rec.Ins[0].Peer != "a" {
		t.Fatalf("in record fields lost: %+v", rec.Ins[0])
	}
	if rec.Watermarks["a"] != 1 {
		t.Fatalf("watermarks = %v", rec.Watermarks)
	}
	if rec.OutCounts[PairKey("b", "c")] != 2 || rec.OutCounts[PairKey("b", "b")] != 1 {
		t.Fatalf("out counts = %v", rec.OutCounts)
	}
	if len(rec.Fires) != 1 || rec.Fires[0] != 42 {
		t.Fatalf("fires = %v", rec.Fires)
	}
	if rec.Acked["c"] != 1 || rec.SentSeq["c"] != 2 {
		t.Fatalf("acked=%v sent=%v", rec.Acked, rec.SentSeq)
	}
	un := rec.Unacked["c"]
	if len(un) != 1 || un[0].Seq != 2 || string(un[0].Payload) != "o2" {
		t.Fatalf("unacked = %+v", un)
	}
}

// TestEmptyOpen opens a fresh directory and expects no recovery work.
func TestEmptyOpen(t *testing.T) {
	l := openT(t, t.TempDir())
	defer l.Close()
	if !l.Recovery().Empty() {
		t.Fatalf("fresh log not empty: %+v", l.Recovery())
	}
}

// TestTornTail corrupts the final record and checks Open truncates to
// the consistent prefix (and that the file is physically truncated so
// later appends extend a valid log).
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	l.Append(Record{Kind: KFire, Site: "a", Sym: "x", At: 1})
	l.Append(Record{Kind: KFire, Site: "a", Sym: "y", At: 2})
	l.Close()

	path := filepath.Join(dir, "wal-1.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the middle of the last record.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir)
	rec := l2.Recovery()
	if len(rec.Fires) != 1 || rec.Fires[0] != 1 {
		t.Fatalf("fires after torn tail = %v", rec.Fires)
	}
	l2.Append(Record{Kind: KFire, Site: "a", Sym: "z", At: 3})
	l2.Close()
	l3 := openT(t, dir)
	defer l3.Close()
	if got := l3.Recovery().Fires; !reflect.DeepEqual(got, []int64{1, 3}) {
		t.Fatalf("fires after append-over-truncation = %v", got)
	}
}

// TestCorruptMiddle flips a byte inside the first record: everything
// from there on is discarded — prefix-consistent, never partial.
func TestCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	l.Append(Record{Kind: KFire, Site: "a", Sym: "x", At: 1})
	l.Append(Record{Kind: KFire, Site: "a", Sym: "y", At: 2})
	l.Close()
	path := filepath.Join(dir, "wal-1.log")
	data, _ := os.ReadFile(path)
	data[10] ^= 0xff
	os.WriteFile(path, data, 0o644)
	l2 := openT(t, dir)
	defer l2.Close()
	if got := l2.Recovery().Fires; len(got) != 0 {
		t.Fatalf("fires after corrupt first record = %v", got)
	}
}

// TestWaitDurable checks the LSN contract: WaitDurable(lsn) returns
// only once the record is on disk (observable after reopen).
func TestWaitDurable(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	var lsns []uint64
	for i := 0; i < 100; i++ {
		lsns = append(lsns, l.Append(Record{Kind: KFire, Site: "a", Sym: "x", At: int64(i)}))
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] != lsns[i-1]+1 {
			t.Fatalf("non-monotone lsns: %v", lsns)
		}
	}
	l.WaitDurable(lsns[len(lsns)-1])
	if l.Durable() < lsns[len(lsns)-1] {
		t.Fatalf("durable %d < last lsn %d", l.Durable(), lsns[len(lsns)-1])
	}
	// Durability must be visible to a scan of the file right now,
	// without Close.
	recs, err := scanFile(filepath.Join(dir, "wal-1.log"))
	if err != nil || len(recs) != 100 {
		t.Fatalf("scan after WaitDurable: %d records, err=%v", len(recs), err)
	}
	l.Close()
}

// TestConcurrentAppend hammers Append/WaitDurable from many
// goroutines; every record must survive a reopen.
func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	var wg sync.WaitGroup
	const G, N = 8, 50
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				lsn := l.Append(Record{Kind: KFire, Site: "a", Sym: "x", At: int64(g*N + i)})
				if i%10 == 0 {
					l.WaitDurable(lsn)
				}
			}
		}(g)
	}
	wg.Wait()
	l.Close()
	l2 := openT(t, dir)
	defer l2.Close()
	if got := len(l2.Recovery().Fires); got != G*N {
		t.Fatalf("recovered %d fires, want %d", got, G*N)
	}
}

// TestOnDurable checks the durable-advance callback fires.
func TestOnDurable(t *testing.T) {
	l := openT(t, t.TempDir())
	defer l.Close()
	ch := make(chan struct{}, 16)
	l.OnDurable(func() {
		select {
		case ch <- struct{}{}:
		default:
		}
	})
	lsn := l.Append(Record{Kind: KFire, Site: "a", Sym: "x", At: 1})
	l.WaitDurable(lsn)
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("onDurable callback never fired")
	}
}

// TestSnapshotRotation writes records, snapshots, appends a tail, and
// checks recovery = snapshot state + tail only, with the old
// generation deleted.
func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	l.Append(Record{Kind: KFire, Site: "a", Sym: "x", At: 5})
	l.Append(Record{Kind: KOut, Site: "a", Site2: "b", Seq: 3, Payload: []byte("old")})
	l.Append(Record{Kind: KAck, Site2: "b", Seq: 3})
	meta := Meta{
		Clock:      9,
		Watermarks: map[string]uint64{"peer1": 4},
		Acked:      map[string]uint64{"b": 3},
		SentSeq:    map[string]uint64{"b": 3},
	}
	if err := l.Snapshot(meta, map[string][]byte{"a": []byte(`{"s":1}`)}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	l.Append(Record{Kind: KFire, Site: "a", Sym: "y", At: 6})
	l.Close()

	if _, err := os.Stat(filepath.Join(dir, "wal-1.log")); !os.IsNotExist(err) {
		t.Fatalf("old generation not deleted: %v", err)
	}
	l2 := openT(t, dir)
	defer l2.Close()
	rec := l2.Recovery()
	if string(rec.SnapSites["a"]) != `{"s":1}` {
		t.Fatalf("snap sites = %v", rec.SnapSites)
	}
	if rec.Clock != 9 || rec.Watermarks["peer1"] != 4 || rec.Acked["b"] != 3 || rec.SentSeq["b"] != 3 {
		t.Fatalf("meta not restored: %+v", rec)
	}
	// Only the tail fire; the pre-snapshot one is compacted away.
	if !reflect.DeepEqual(rec.Fires, []int64{6}) {
		t.Fatalf("fires = %v", rec.Fires)
	}
	if len(rec.Unacked) != 0 {
		t.Fatalf("unacked across snapshot = %v", rec.Unacked)
	}
}

// TestCheckpointFold checks KCkpt metas fold as monotone maxima with
// tail records on top.
func TestCheckpointFold(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	ck := func(m Meta) {
		b, _ := json.Marshal(m)
		l.Append(Record{Kind: KCkpt, Payload: b})
	}
	ck(Meta{Clock: 5, Watermarks: map[string]uint64{"p": 2}})
	ck(Meta{Clock: 3, Watermarks: map[string]uint64{"p": 1, "q": 9}})
	l.Append(Record{Kind: KIn, Site: "b", Peer: "p", Seq: 7, Clock: 1, Payload: []byte("m")})
	l.Close()
	l2 := openT(t, dir)
	defer l2.Close()
	rec := l2.Recovery()
	if rec.Clock != 5 {
		t.Fatalf("clock = %d", rec.Clock)
	}
	if rec.Watermarks["p"] != 7 || rec.Watermarks["q"] != 9 {
		t.Fatalf("watermarks = %v", rec.Watermarks)
	}
}

// TestDoubleOpenDeterminism: opening the same directory twice (read
// only the first time) yields identical recovery.
func TestDoubleOpenDeterminism(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	l.Append(Record{Kind: KIn, Site: "b", Peer: "a", Seq: 1, Clock: 3, Payload: []byte("m")})
	l.Append(Record{Kind: KFire, Site: "b", Sym: "e", At: 11})
	l.Close()
	l1 := openT(t, dir)
	r1 := *l1.Recovery()
	l1.Close()
	l2 := openT(t, dir)
	r2 := *l2.Recovery()
	l2.Close()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("recoveries differ:\n%+v\n%+v", r1, r2)
	}
}

// FuzzWALReplay feeds arbitrary bytes in as a log file: Open must
// never panic, must yield either an error or a recovery, and the scan
// must be prefix-consistent — re-opening after the implicit
// truncation reproduces exactly the same recovery (no divergent
// state from a corrupt tail).
func FuzzWALReplay(f *testing.F) {
	// Seed with a valid log and mutations of it.
	var valid []byte
	valid = appendRecord(valid, Record{Kind: KIn, Site: "b", Peer: "a", Seq: 1, Clock: 3, Payload: []byte("m1")})
	valid = appendRecord(valid, Record{Kind: KFire, Site: "b", Sym: "e", At: 17})
	valid = appendRecord(valid, Record{Kind: KOut, Site: "b", Site2: "c", Seq: 1, Payload: []byte("o")})
	valid = appendRecord(valid, Record{Kind: KAck, Site2: "c", Seq: 1})
	mj, _ := json.Marshal(Meta{Clock: 4, Watermarks: map[string]uint64{"a": 1}})
	valid = appendRecord(valid, Record{Kind: KCkpt, Payload: mj})
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 255, 1, 2, 3, 4})
	flip := bytes.Clone(valid)
	flip[9] ^= 0x40
	f.Add(flip)
	huge := bytes.Clone(valid)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	f.Add(huge)
	// Bytes actually written by the shared committer: two logs on one
	// committer appending concurrently, so the seed covers records laid
	// down in group-committed batches rather than one flush per append.
	cdir := f.TempDir()
	c := NewCommitter(CommitterOptions{Interval: time.Millisecond})
	var cl [2]*Log
	for i := range cl {
		l, err := Open(filepath.Join(cdir, fmt.Sprint("l", i)), Options{Committer: c})
		if err != nil {
			f.Fatalf("Open with committer: %v", err)
		}
		cl[i] = l
	}
	var wg sync.WaitGroup
	for i, l := range cl {
		wg.Add(1)
		go func(i int, l *Log) {
			defer wg.Done()
			var last uint64
			for j := 0; j < 8; j++ {
				last = l.Append(Record{Kind: KFire, Site: "b", Sym: "e", At: int64(i*100 + j)})
				last = l.Append(Record{Kind: KIn, Site: "b", Peer: "a", Seq: uint64(j + 1), Clock: int64(j), Payload: []byte("m")})
			}
			l.WaitDurable(last)
		}(i, l)
	}
	wg.Wait()
	for _, l := range cl {
		l.Close()
	}
	c.Close()
	for i := range cl {
		data, err := os.ReadFile(filepath.Join(cdir, fmt.Sprint("l", i), "wal-1.log"))
		if err != nil {
			f.Fatalf("read committer seed: %v", err)
		}
		f.Add(data)
		f.Add(data[:len(data)-7])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal-1.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		l, err := Open(dir, Options{})
		if err != nil {
			return // clean error is acceptable
		}
		r1 := *l.Recovery()
		l.Close()
		// Open truncated the torn tail; a second scan must agree.
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second open failed after truncation: %v", err)
		}
		r2 := *l2.Recovery()
		l2.Close()
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("recovery diverged across reopen:\n%+v\n%+v", r1, r2)
		}
		// The recovered prefix must itself be a valid record stream.
		recs, err := scanFile(path)
		if err != nil && !os.IsNotExist(err) {
			t.Fatalf("scan after truncation: %v", err)
		}
		if len(recs) != len(r1.Ins)+len(r1.Fires) && len(recs) < len(r1.Ins) {
			// Weak sanity only: kinds other than KIn/KFire also count.
			t.Fatalf("scan shrank below recovered records")
		}
	})
}
