//go:build !race

package wal

// raceEnabled reports whether the race detector instruments this
// build (allocation counts are not meaningful under it).
const raceEnabled = false
