// Package wal is a per-node durable write-ahead log for the netwire
// transport: an append-only record stream of inbound deliveries,
// outbound frames, acknowledgement watermarks, and verdict transitions
// (fires and rejects), framed with a length prefix and a CRC so a torn
// or corrupted tail truncates to a consistent prefix instead of
// poisoning recovery.
//
// The log is the source of truth for crash recovery.  The paper's
// synthesized guards make every verdict a deterministic function of
// the announcements a site has observed, so replaying the durable
// inbound stream — with occurrence indices pinned from the logged
// fire records and already-sent frames suppressed by count matching —
// reconstructs exactly the residuated guard state, the Lamport
// counter, and the at-least-once delivery watermarks the node held
// when it crashed.  Peers' go-back-N retransmissions then dedup
// cleanly across the restart boundary.
//
// Durability ordering is what makes the replay sound, and it is all
// prefix-based: records gain durability strictly in append (LSN)
// order, a delivery is processed only after its IN record is durable,
// an ACK is written only after the acknowledged INs are durable, and
// an outbound frame is transmitted only once its OUT record (and,
// transitively, the FIRE record of the occurrence it announces) is
// durable.  Consequently every message a peer may have seen, and
// every input that shaped local state, is in the durable prefix.
//
// Snapshots compact the log: at a quiescent point the caller provides
// per-site serialized actor state; the log writes a snapshot file,
// rotates to a fresh generation, and deletes the old one.  Recovery
// restores the snapshot first and replays only the tail.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Record kinds.
const (
	// KIn is one inbound delivery: a frame admitted from a peer
	// (Peer = sending node id, Seq = link sequence, Clock = frame
	// Lamport counter) or a local send (Peer empty, Site2 = from-site).
	// Site is the destination site; Payload is the actor wire encoding.
	KIn byte = iota + 1
	// KOut is one outbound frame enqueued on a link: Site = from-site,
	// Site2 = to-site, Seq = link sequence, Payload = wire encoding.
	KOut
	// KAck records acknowledgement progress for frames to Site2: every
	// outbound frame to that site with sequence ≤ Seq was acknowledged.
	KAck
	// KFire pins a fire verdict: Site's actor fired Sym at occurrence
	// index At.  Replay consumes these in order so recovered fires
	// reuse their original occurrence indices.
	KFire
	// KReject records a reject verdict (Site, Sym, Note = reason).
	// Rejects are re-derived deterministically by replay; the record is
	// diagnostic.
	KReject
	// KCkpt is an in-log checkpoint carrying Meta as JSON in Payload.
	// All Meta fields are monotone maxima, so folding every checkpoint
	// during recovery is sound without any log truncation.
	KCkpt
	// KSnapMeta (snapshot files only) carries Meta as JSON in Payload.
	KSnapMeta
	// KSnapSite (snapshot files only) carries one site's serialized
	// actor state: Site, Payload.
	KSnapSite
)

// Record is the single codec shared by every kind; unused fields stay
// zero and encode compactly.
type Record struct {
	Kind    byte
	Site    string
	Site2   string
	Peer    string
	Sym     string
	Note    string
	Seq     uint64
	Clock   int64
	At      int64
	Payload []byte
}

// Meta is the watermark state snapshots and checkpoints persist:
// everything the transport needs besides actor state, all monotone.
type Meta struct {
	// Clock is the node's Lamport counter (not shifted).
	Clock int64 `json:"clock"`
	// Watermarks: sending node id → highest in-order inbound sequence.
	Watermarks map[string]uint64 `json:"watermarks,omitempty"`
	// Acked: destination site → highest acknowledged outbound sequence.
	Acked map[string]uint64 `json:"acked,omitempty"`
	// SentSeq: destination site → highest assigned outbound sequence.
	SentSeq map[string]uint64 `json:"sentSeq,omitempty"`
}

// Options configure a Log.
type Options struct {
	// NoSync skips fsync after each flush (group commit still orders
	// writes; durability then depends on the OS).  For benchmarks.
	NoSync bool
	// Batch, when positive, is an extra delay the flusher waits after
	// the first pending append before flushing, to widen group-commit
	// batches.  Zero flushes as soon as the flusher is free — fsync
	// latency itself batches concurrent appenders.  Ignored when
	// Committer is set (the committer's Interval plays this role).
	Batch time.Duration
	// Committer, when set, registers the log with a shared fsync
	// scheduler instead of spawning a dedicated flusher goroutine:
	// all logs on one committer flush in coalesced rounds, so N busy
	// logs cost one round of overlapped fsyncs rather than N
	// independent flush loops.  Close the logs before the committer.
	Committer *Committer
}

// maxRecord bounds one record body; larger frames are corruption.
const maxRecord = 16 << 20

// Recovery is the scanned state of a log at Open: the snapshot parts,
// the tail records grouped the way replay consumes them, and the
// folded watermark maxima.
type Recovery struct {
	// SnapSites: site → serialized actor state from the snapshot file.
	SnapSites map[string][]byte
	// Clock is the maximum Lamport counter recorded by any checkpoint
	// or snapshot meta (replay folds inbound clocks and fire pins on
	// top of it).
	Clock int64
	// Ins are the tail KIn records in log order — the replay stream.
	Ins []Record
	// OutCounts: "from\x00to" → number of logged sends (KOut plus
	// local KIn), the suppression counts for replayed sends.
	OutCounts map[string]int
	// Unacked: to-site → tail KOut records with Seq > Acked[to], in
	// ascending sequence order — the frames to restore onto links.
	Unacked map[string][]Record
	// Fires are the KFire occurrence indices in log order — the FIFO
	// pin queue for replayed fires.
	Fires []int64
	// Acked / Watermarks / SentSeq are folded maxima (tail records and
	// every checkpoint/snapshot meta).
	Acked      map[string]uint64
	Watermarks map[string]uint64
	SentSeq    map[string]uint64
	// Serve holds serving-layer records (KSpecReg, KAdmit, KEvent,
	// KDone) in log order; internal/serve folds them itself.
	Serve []Record
}

// Empty reports that recovery has nothing to restore.
func (r *Recovery) Empty() bool {
	return r == nil || (len(r.SnapSites) == 0 && len(r.Ins) == 0 && len(r.Fires) == 0 &&
		len(r.Unacked) == 0 && len(r.Acked) == 0 && len(r.Watermarks) == 0 && r.Clock == 0 &&
		len(r.Serve) == 0)
}

// PairKey builds the OutCounts key for a (from, to) site pair.
func PairKey(from, to string) string { return from + "\x00" + to }

// Log is one node's write-ahead log: group-committed appends with an
// advancing durable LSN.
type Log struct {
	dir  string
	opts Options

	mu         sync.Mutex
	cond       *sync.Cond
	f          *os.File
	gen        uint64
	buf        []byte // pending encoded records
	spare      []byte // recycled flush buffer (capacity reuse)
	scratch    []byte // record-body encode buffer, reused per append
	lastLSN    uint64 // last assigned
	committing bool   // a flush of this log is in flight
	closed     bool
	committer  *Committer // shared scheduler, nil when self-flushed
	notif      notifyHeap // durability callbacks parked by LSN

	durable   atomic.Uint64
	onDurable atomic.Value // func()
	syncs     atomic.Int64
	rate      atomic.Uint64 // float64 bits: EWMA committed records/sec

	rec *Recovery
}

// notifyEntry parks one callback until the durable LSN reaches lsn.
type notifyEntry struct {
	lsn uint64
	fn  func()
}

// notifyHeap is a min-heap on lsn (hand-rolled: the hot path pushes
// mostly in LSN order, so sift-up is O(1) amortized).
type notifyHeap []notifyEntry

func (h *notifyHeap) push(e notifyEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].lsn <= (*h)[i].lsn {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *notifyHeap) pop() notifyEntry {
	top := (*h)[0]
	n := len(*h) - 1
	(*h)[0] = (*h)[n]
	(*h)[n] = notifyEntry{}
	*h = (*h)[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && (*h)[l].lsn < (*h)[s].lsn {
			s = l
		}
		if r < n && (*h)[r].lsn < (*h)[s].lsn {
			s = r
		}
		if s == i {
			break
		}
		(*h)[i], (*h)[s] = (*h)[s], (*h)[i]
		i = s
	}
	return top
}

// Open opens (creating if needed) the log in dir, scanning any
// existing generation into a Recovery.  A torn or corrupt tail is
// truncated at the first bad frame.
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	l.cond = sync.NewCond(&l.mu)
	gen, err := latestGen(dir)
	if err != nil {
		return nil, err
	}
	l.gen = gen
	rec := &Recovery{
		SnapSites: map[string][]byte{}, OutCounts: map[string]int{},
		Unacked: map[string][]Record{}, Acked: map[string]uint64{},
		Watermarks: map[string]uint64{}, SentSeq: map[string]uint64{},
	}
	if snap, err := scanFile(l.snapPath(gen)); err == nil {
		for _, r := range snap {
			switch r.Kind {
			case KSnapMeta:
				rec.foldMeta(r.Payload)
			case KSnapSite:
				rec.SnapSites[r.Site] = r.Payload
			}
		}
	}
	logPath := l.logPath(gen)
	tail, scanErr := scanFileTruncate(logPath)
	if scanErr != nil {
		return nil, scanErr
	}
	for _, r := range tail {
		rec.fold(r)
	}
	for to, acked := range rec.Acked {
		kept := rec.Unacked[to][:0]
		for _, r := range rec.Unacked[to] {
			if r.Seq > acked {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			delete(rec.Unacked, to)
		} else {
			rec.Unacked[to] = kept
		}
	}
	l.rec = rec
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	if c := opts.Committer; c != nil && c.register(l) {
		l.committer = c
	} else {
		go l.flusher()
	}
	return l, nil
}

// fold incorporates one tail record into the recovery state.
func (rec *Recovery) fold(r Record) {
	switch r.Kind {
	case KIn:
		rec.Ins = append(rec.Ins, r)
		if r.Peer != "" {
			if r.Seq > rec.Watermarks[r.Peer] {
				rec.Watermarks[r.Peer] = r.Seq
			}
		} else if r.Site2 != "" {
			rec.OutCounts[PairKey(r.Site2, r.Site)]++
		}
	case KOut:
		rec.OutCounts[PairKey(r.Site, r.Site2)]++
		rec.Unacked[r.Site2] = append(rec.Unacked[r.Site2], r)
		if r.Seq > rec.SentSeq[r.Site2] {
			rec.SentSeq[r.Site2] = r.Seq
		}
	case KAck:
		if r.Seq > rec.Acked[r.Site2] {
			rec.Acked[r.Site2] = r.Seq
		}
	case KFire:
		rec.Fires = append(rec.Fires, r.At)
	case KCkpt:
		rec.foldMeta(r.Payload)
	case KSpecReg, KAdmit, KEvent, KDone:
		rec.Serve = append(rec.Serve, r)
	}
}

func (rec *Recovery) foldMeta(payload []byte) {
	var m Meta
	if json.Unmarshal(payload, &m) != nil {
		return
	}
	if m.Clock > rec.Clock {
		rec.Clock = m.Clock
	}
	foldMax := func(dst map[string]uint64, src map[string]uint64) {
		for k, v := range src {
			if v > dst[k] {
				dst[k] = v
			}
		}
	}
	foldMax(rec.Watermarks, m.Watermarks)
	foldMax(rec.Acked, m.Acked)
	foldMax(rec.SentSeq, m.SentSeq)
}

// Recovery returns the state scanned at Open.  The caller replays it
// before appending new records.
func (l *Log) Recovery() *Recovery { return l.rec }

// Append encodes one record, assigns its LSN, and schedules the
// flush.  It never blocks on I/O; callers that need durability call
// WaitDurable with the returned LSN or park a Notify callback on it.
// The encode path reuses the log's scratch and flush buffers, so a
// steady-state append allocates nothing (gated by
// TestWALAppendZeroAlloc in make benchsmoke).
func (l *Log) Append(r Record) uint64 {
	l.mu.Lock()
	if l.buf == nil && l.spare != nil {
		l.buf, l.spare = l.spare, nil
	}
	l.scratch = encodeBody(l.scratch[:0], r)
	l.buf = appendFramed(l.buf, l.scratch)
	l.lastLSN++
	lsn := l.lastLSN
	c := l.committer
	if c == nil {
		// Wake the per-log flusher.  A committer-owned log skips the
		// broadcast: nothing waits on appends (durability waiters wake
		// from finishCommit), and the nudge below schedules the round.
		l.cond.Broadcast()
	}
	l.mu.Unlock()
	mRecords.Inc()
	mPending.Add(1)
	if c != nil {
		c.nudge(l)
	}
	return lsn
}

// Durable returns the highest LSN known durable.
func (l *Log) Durable() uint64 { return l.durable.Load() }

// Syncs counts completed fsync batches — the group-commit width story
// in one number (records appended / Syncs() = average batch size).
func (l *Log) Syncs() int64 { return l.syncs.Load() }

// CommitRate is a decaying estimate of this log's recent commit
// throughput in records/sec (0 until the first commit).  Admission
// control divides fsync lag by it to size Retry-After honestly.
func (l *Log) CommitRate() float64 {
	return math.Float64frombits(l.rate.Load())
}

// WaitDurable blocks until the given LSN is durable (or the log is
// closed, which flushes everything first).
func (l *Log) WaitDurable(lsn uint64) {
	if l.durable.Load() >= lsn {
		return
	}
	start := time.Now()
	l.mu.Lock()
	for l.durable.Load() < lsn && !l.closed {
		l.cond.Wait()
	}
	l.mu.Unlock()
	mParkUS.Observe(time.Since(start).Microseconds())
}

// Notify parks fn until the durable LSN reaches lsn, then runs it on
// the commit goroutine (keep it short).  An already-durable LSN runs
// fn inline before Notify returns.  Close fires every still-parked
// callback after the final flush, so no callback is ever dropped.
func (l *Log) Notify(lsn uint64, fn func()) {
	l.mu.Lock()
	if l.durable.Load() >= lsn || l.closed {
		l.mu.Unlock()
		fn()
		return
	}
	l.notif.push(notifyEntry{lsn: lsn, fn: fn})
	l.mu.Unlock()
}

// Sync flushes and (unless NoSync) fsyncs everything appended so far.
func (l *Log) Sync() {
	l.mu.Lock()
	lsn := l.lastLSN
	l.mu.Unlock()
	l.WaitDurable(lsn)
}

// OnDurable registers a callback invoked (from the commit goroutine)
// whenever the durable LSN advances.
func (l *Log) OnDurable(fn func()) { l.onDurable.Store(fn) }

// flusher is the per-log group-commit loop (used when no Committer is
// attached): it swaps out whatever appends accumulated, writes and
// fsyncs them as one batch, and advances the durable LSN.  Appends
// arriving during an fsync pile into the next batch, which is the
// whole batching story.
func (l *Log) flusher() {
	for {
		l.mu.Lock()
		for (len(l.buf) == 0 || l.committing) && !l.closed {
			l.cond.Wait()
		}
		if l.closed && (len(l.buf) == 0 || l.committing) {
			l.mu.Unlock()
			return
		}
		if d := l.opts.Batch; d > 0 && !l.closed {
			l.mu.Unlock()
			time.Sleep(d)
			l.mu.Lock()
		}
		l.mu.Unlock()
		l.commitOnce()
	}
}

// takePending claims the pending buffer for one commit: it marks the
// log committing (write order within one log must match append order,
// so flushes never overlap) and hands back the file, the bytes, and
// the LSN the flush will make durable.
func (l *Log) takePending() (f *os.File, data []byte, lsn uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.committing || len(l.buf) == 0 {
		return nil, nil, 0, false
	}
	l.committing = true
	data = l.buf
	l.buf = nil
	return l.f, data, l.lastLSN, true
}

// hasPending reports un-flushed appended bytes.
func (l *Log) hasPending() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf) > 0
}

// finishCommit advances the durable LSN after a write (and fsync,
// when synced), recycles the flush buffer, wakes parked waiters, and
// fires the durability notifications the advance released.
func (l *Log) finishCommit(data []byte, lsn uint64, synced bool) {
	prev := l.durable.Load()
	var fns []func()
	l.mu.Lock()
	l.committing = false
	if l.spare == nil || cap(data) > cap(l.spare) {
		l.spare = data[:0]
	}
	for {
		cur := l.durable.Load()
		if lsn <= cur || l.durable.CompareAndSwap(cur, lsn) {
			break
		}
	}
	durable := l.durable.Load()
	for len(l.notif) > 0 && l.notif[0].lsn <= durable {
		fns = append(fns, l.notif.pop().fn)
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	if synced {
		l.syncs.Add(1)
		mSyncs.Inc()
	}
	if lsn > prev {
		mPending.Add(-int64(lsn - prev))
		mWidth.Observe(int64(lsn - prev))
	}
	for _, fn := range fns {
		fn()
	}
	if fn, ok := l.onDurable.Load().(func()); ok && fn != nil {
		fn()
	}
}

// commitOnce runs one full write+fsync round for this log and updates
// the commit-rate estimate.
func (l *Log) commitOnce() {
	f, data, lsn, ok := l.takePending()
	if !ok {
		return
	}
	start := time.Now()
	synced := false
	if _, err := f.Write(data); err == nil && !l.opts.NoSync {
		f.Sync()
		synced = true
	}
	l.observeRate(int64(lsn-l.durable.Load()), time.Since(start))
	l.finishCommit(data, lsn, synced)
}

// observeRate folds one commit of n records over dt into the decaying
// records/sec estimate.
func (l *Log) observeRate(n int64, dt time.Duration) {
	if n <= 0 {
		return
	}
	if dt < time.Microsecond {
		dt = time.Microsecond
	}
	inst := float64(n) / dt.Seconds()
	for {
		old := l.rate.Load()
		prev := math.Float64frombits(old)
		next := inst
		if prev > 0 {
			next = 0.7*prev + 0.3*inst
		}
		if l.rate.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Snapshot rotates the log: it writes a new snapshot file holding
// meta plus the per-site states, switches appends to a fresh empty
// generation, and deletes the old generation.  The caller must have
// quiesced the node — every prior append settled, no deliveries in
// flight — so the discarded log prefix is fully captured by the
// snapshot.
func (l *Log) Snapshot(meta Meta, sites map[string][]byte) error {
	l.Sync()
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.committing {
		// A flush claimed the old generation's file; let it land before
		// the rotation closes that file under it.
		l.cond.Wait()
	}
	if l.closed {
		return fmt.Errorf("wal: closed")
	}
	next := l.gen + 1
	var buf []byte
	mj, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	buf = appendRecord(buf, Record{Kind: KSnapMeta, Payload: mj})
	names := make([]string, 0, len(sites))
	for s := range sites {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		buf = appendRecord(buf, Record{Kind: KSnapSite, Site: s, Payload: sites[s]})
	}
	tmp := filepath.Join(l.dir, "snap.tmp")
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, l.snapPath(next)); err != nil {
		return err
	}
	nf, err := os.OpenFile(l.logPath(next), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	old, oldGen := l.f, l.gen
	l.f, l.gen = nf, next
	old.Close()
	os.Remove(l.logPath(oldGen))
	os.Remove(l.snapPath(oldGen))
	return nil
}

// Close flushes, fsyncs, and closes the log, then detaches it from
// its committer (if any) and fires every still-parked notification.
func (l *Log) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	lsn := l.lastLSN
	l.mu.Unlock()
	l.WaitDurable(lsn)
	l.mu.Lock()
	l.closed = true
	var fns []func()
	for len(l.notif) > 0 {
		fns = append(fns, l.notif.pop().fn)
	}
	l.cond.Broadcast()
	f := l.f
	c := l.committer
	l.committer = nil
	l.mu.Unlock()
	if c != nil {
		c.unregister(l)
	}
	for _, fn := range fns {
		fn()
	}
	if f != nil {
		f.Close()
	}
}

func (l *Log) logPath(gen uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("wal-%d.log", gen))
}

func (l *Log) snapPath(gen uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("snap-%d", gen))
}

// latestGen finds the highest generation present (log or snapshot
// file); 1 when the directory is empty.
func latestGen(dir string) (uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	best := uint64(1)
	for _, e := range ents {
		name := e.Name()
		var digits string
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			digits = strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
		case strings.HasPrefix(name, "snap-"):
			digits = strings.TrimPrefix(name, "snap-")
		default:
			continue
		}
		if g, err := strconv.ParseUint(digits, 10, 64); err == nil && g > best {
			best = g
		}
	}
	return best, nil
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// --- record framing ---------------------------------------------------

// appendRecord frames one record: [u32 body length][u32 CRC32(body)]
// [body], body = kind byte plus length-prefixed strings, varints, and
// the payload.
func appendRecord(dst []byte, r Record) []byte {
	return appendFramed(dst, encodeBody(make([]byte, 0, 32+len(r.Payload)), r))
}

// encodeBody appends the record body (no frame) to dst.  The append
// hot path reuses the log's scratch buffer here, so the steady state
// allocates nothing.
func encodeBody(dst []byte, r Record) []byte {
	dst = append(dst, r.Kind)
	dst = appendString(dst, r.Site)
	dst = appendString(dst, r.Site2)
	dst = appendString(dst, r.Peer)
	dst = appendString(dst, r.Sym)
	dst = appendString(dst, r.Note)
	dst = binary.AppendUvarint(dst, r.Seq)
	dst = binary.AppendVarint(dst, r.Clock)
	dst = binary.AppendVarint(dst, r.At)
	dst = binary.AppendUvarint(dst, uint64(len(r.Payload)))
	return append(dst, r.Payload...)
}

// appendFramed appends the length+CRC frame header and the body.
func appendFramed(dst []byte, body []byte) []byte {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// parseRecord decodes one framed record from data, returning the
// record and the unconsumed remainder.  Any inconsistency — short
// frame, CRC mismatch, malformed body — is an error; the caller
// treats it as the end of the valid prefix.
func parseRecord(data []byte) (Record, []byte, error) {
	var r Record
	if len(data) < 8 {
		return r, nil, fmt.Errorf("wal: short frame header")
	}
	size := binary.BigEndian.Uint32(data[0:4])
	crc := binary.BigEndian.Uint32(data[4:8])
	if size < 1 || size > maxRecord {
		return r, nil, fmt.Errorf("wal: frame size %d out of range", size)
	}
	if uint64(len(data)-8) < uint64(size) {
		return r, nil, fmt.Errorf("wal: torn frame")
	}
	body := data[8 : 8+size]
	if crc32.ChecksumIEEE(body) != crc {
		return r, nil, fmt.Errorf("wal: CRC mismatch")
	}
	rest := data[8+size:]
	pos := 0
	r.Kind = body[pos]
	pos++
	var err error
	str := func() string {
		if err != nil {
			return ""
		}
		ln, n := binary.Uvarint(body[pos:])
		if n <= 0 || ln > maxRecord || pos+n+int(ln) > len(body) {
			err = fmt.Errorf("wal: bad string")
			return ""
		}
		s := string(body[pos+n : pos+n+int(ln)])
		pos += n + int(ln)
		return s
	}
	r.Site = str()
	r.Site2 = str()
	r.Peer = str()
	r.Sym = str()
	r.Note = str()
	if err != nil {
		return r, nil, err
	}
	uv := func() uint64 {
		if err != nil {
			return 0
		}
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			err = fmt.Errorf("wal: bad uvarint")
			return 0
		}
		pos += n
		return v
	}
	sv := func() int64 {
		if err != nil {
			return 0
		}
		v, n := binary.Varint(body[pos:])
		if n <= 0 {
			err = fmt.Errorf("wal: bad varint")
			return 0
		}
		pos += n
		return v
	}
	r.Seq = uv()
	r.Clock = sv()
	r.At = sv()
	pl := uv()
	if err != nil {
		return r, nil, err
	}
	if pl > maxRecord || pos+int(pl) != len(body) {
		return r, nil, fmt.Errorf("wal: bad payload length")
	}
	if pl > 0 {
		r.Payload = append([]byte(nil), body[pos:pos+int(pl)]...)
	}
	return r, rest, nil
}

// scanFile reads every valid record of a file; a bad tail is ignored.
func scanFile(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	recs, _ := scanBytes(data)
	return recs, nil
}

// scanBytes parses records until the first invalid frame, returning
// the valid prefix and its byte length.
func scanBytes(data []byte) ([]Record, int64) {
	var out []Record
	rest := data
	for len(rest) > 0 {
		r, next, err := parseRecord(rest)
		if err != nil {
			break
		}
		out = append(out, r)
		rest = next
	}
	return out, int64(len(data) - len(rest))
}

// scanFileTruncate reads a log file and physically truncates any
// invalid tail, so subsequent appends extend the consistent prefix.
func scanFileTruncate(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	recs, good := scanBytes(data)
	if good < int64(len(data)) {
		if err := os.Truncate(path, good); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	return recs, nil
}
