package wal

import "repro/internal/obs"

// Durability-pipeline metrics.  wal.records / wal.syncs is the
// achieved group-commit width (also broken out per fsync by the
// wal.commit_width histogram); wal.pending_records is the live
// appended-but-not-durable backlog across every open log (the fsync
// lag admission control sheds on); wal.park_us is how long durability
// waiters actually parked.  /debug/metrics and wftrace surface all of
// them via the default registry.
var (
	mRecords = obs.C("wal.records")
	mSyncs   = obs.C("wal.syncs")
	mRounds  = obs.C("wal.commit_rounds")
	mPending = obs.G("wal.pending_records")
	mWidth   = obs.H("wal.commit_width",
		1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)
	mRoundLogs = obs.H("wal.commit_round_logs",
		1, 2, 4, 8, 16, 32, 64)
	mParkUS = obs.H("wal.park_us",
		10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000,
		25_000, 50_000, 100_000, 250_000, 1_000_000)
)
