// Package dep is the dependency-pattern library: the intertask
// dependency primitives of the literature the paper builds on,
// expressed as constructors over the event algebra.
//
// The two primitives of Klein [10] — which the paper notes can capture
// those of ACTA [3] and Günthör [8] — are Before (e < f) and Implies
// (e → f); the remaining patterns are the idioms the paper's examples
// use: ordered enablement, compensation, exclusion, and coupling.
// Every constructor returns a plain expression, so patterns compose
// freely with hand-written dependencies.
package dep

import (
	"repro/internal/algebra"
	"repro/internal/core"
)

// Before is Klein's e < f: if both events occur, e precedes f.
// Formalized as ē + f̄ + e·f (paper, Example 3).
func Before(e, f algebra.Symbol) *algebra.Expr {
	return algebra.Choice(
		algebra.At(e.Complement()),
		algebra.At(f.Complement()),
		algebra.Seq(algebra.At(e), algebra.At(f)),
	)
}

// Implies is Klein's e → f: if e occurs then f also occurs, before or
// after e.  Formalized as ē + f (paper, Example 2).
func Implies(e, f algebra.Symbol) *algebra.Expr {
	return algebra.Choice(algebra.At(e.Complement()), algebra.At(f))
}

// Enables is ordered implication: e occurs only after f has, and
// conversely f's occurrence permits e.  Formalized as ē + f·e.
// This is the paper's dependency (2): "if buy commits, it commits
// after book".
func Enables(f, e algebra.Symbol) *algebra.Expr {
	return algebra.Choice(
		algebra.At(e.Complement()),
		algebra.Seq(algebra.At(f), algebra.At(e)),
	)
}

// Compensate is the paper's dependency (3) pattern: if the committed
// event occurs, then either the success event occurs or the
// compensation does.  Formalized as c̄ + s + k.
func Compensate(committed, success, compensation algebra.Symbol) *algebra.Expr {
	return algebra.Choice(
		algebra.At(committed.Complement()),
		algebra.At(success),
		algebra.At(compensation),
	)
}

// OnlyIfNever restricts e to executions in which f never occurs:
// ē + f̄.  The paper's Example 4 closes with this strengthening
// ("cancel only when buy never commits").
func OnlyIfNever(e, f algebra.Symbol) *algebra.Expr {
	return algebra.Choice(algebra.At(e.Complement()), algebra.At(f.Complement()))
}

// Exclusive forbids the two events from both occurring: ē + f̄.
// It is OnlyIfNever read symmetrically.
func Exclusive(e, f algebra.Symbol) *algebra.Expr { return OnlyIfNever(e, f) }

// Coupled makes the events occur together or not at all: the pair of
// implications e → f and f → e.
func Coupled(e, f algebra.Symbol) []*algebra.Expr {
	return []*algebra.Expr{Implies(e, f), Implies(f, e)}
}

// Chain orders the events pairwise: e1 < e2 < … < en.
func Chain(events ...algebra.Symbol) []*algebra.Expr {
	var out []*algebra.Expr
	for i := 0; i+1 < len(events); i++ {
		out = append(out, Before(events[i], events[i+1]))
	}
	return out
}

// ForkJoin orders a start event before each middle event and each
// middle event before the join.
func ForkJoin(start algebra.Symbol, middles []algebra.Symbol, join algebra.Symbol) []*algebra.Expr {
	var out []*algebra.Expr
	for _, m := range middles {
		out = append(out, Before(start, m), Before(m, join))
	}
	return out
}

// MutexPair is Example 13's parametrized mutual exclusion in one
// direction: if task i enters its critical section before task j
// enters, then i exits before j enters.  Events: bi/ei are i's
// enter/exit types, bj is j's enter type.
func MutexPair(bi, ei, bj algebra.Symbol) *algebra.Expr {
	return algebra.Choice(
		algebra.Seq(algebra.At(bj), algebra.At(bi)),
		algebra.At(ei.Complement()),
		algebra.At(bj.Complement()),
		algebra.Seq(algebra.At(ei), algebra.At(bj)),
	)
}

// Travel is the paper's Example 4 workflow over the given event
// symbols; strengthen adds the fourth dependency the paper discusses
// (cancel only when buy never commits).
func Travel(sBuy, cBuy, sBook, cBook, sCancel algebra.Symbol, strengthen bool) *core.Workflow {
	w := core.NewWorkflow(
		Implies(sBuy, sBook),
		Enables(cBook, cBuy),
		Compensate(cBook, cBuy, sCancel),
	)
	w.Names = []string{"init", "order", "comp"}
	if strengthen {
		w.Deps = append(w.Deps, OnlyIfNever(sCancel, cBuy))
		w.Names = append(w.Names, "only")
	}
	return w
}
