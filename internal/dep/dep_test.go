package dep

import (
	"testing"

	"repro/internal/algebra"
)

func sym(k string) algebra.Symbol {
	s, err := algebra.ParseSymbol(k)
	if err != nil {
		panic(err)
	}
	return s
}

// checkSemantics verifies, over every maximal trace of the pattern's
// alphabet, that the pattern accepts exactly the traces the predicate
// describes.
func checkSemantics(t *testing.T, name string, d *algebra.Expr, ok func(u algebra.Trace) bool) {
	t.Helper()
	for _, u := range algebra.MaximalUniverse(d.Gamma()) {
		if got, want := u.Satisfies(d), ok(u); got != want {
			t.Errorf("%s: trace %v: got %v want %v", name, u, got, want)
		}
	}
}

func TestBefore(t *testing.T) {
	e, f := sym("e"), sym("f")
	checkSemantics(t, "before", Before(e, f), func(u algebra.Trace) bool {
		ie, fi := u.Index(e), u.Index(f)
		if ie < 0 || fi < 0 {
			return true // one of them never occurs
		}
		return ie < fi
	})
}

func TestImplies(t *testing.T) {
	e, f := sym("e"), sym("f")
	checkSemantics(t, "implies", Implies(e, f), func(u algebra.Trace) bool {
		return !u.Contains(e) || u.Contains(f)
	})
}

func TestEnables(t *testing.T) {
	e, f := sym("e"), sym("f")
	checkSemantics(t, "enables", Enables(f, e), func(u algebra.Trace) bool {
		if !u.Contains(e) {
			return true
		}
		fi := u.Index(f)
		return fi >= 0 && fi < u.Index(e)
	})
}

func TestCompensate(t *testing.T) {
	c, s, k := sym("c"), sym("s"), sym("k")
	checkSemantics(t, "compensate", Compensate(c, s, k), func(u algebra.Trace) bool {
		return !u.Contains(c) || u.Contains(s) || u.Contains(k)
	})
}

func TestOnlyIfNeverAndExclusive(t *testing.T) {
	e, f := sym("e"), sym("f")
	pred := func(u algebra.Trace) bool { return !(u.Contains(e) && u.Contains(f)) }
	checkSemantics(t, "onlyIfNever", OnlyIfNever(e, f), pred)
	checkSemantics(t, "exclusive", Exclusive(e, f), pred)
}

func TestCoupled(t *testing.T) {
	e, f := sym("e"), sym("f")
	deps := Coupled(e, f)
	if len(deps) != 2 {
		t.Fatalf("coupled: %d deps", len(deps))
	}
	both := algebra.Conj(deps[0], deps[1])
	checkSemantics(t, "coupled", both, func(u algebra.Trace) bool {
		return u.Contains(e) == u.Contains(f)
	})
}

func TestChainAndForkJoin(t *testing.T) {
	a, b, c := sym("a"), sym("b"), sym("c")
	chain := Chain(a, b, c)
	if len(chain) != 2 {
		t.Fatalf("chain deps: %d", len(chain))
	}
	if !chain[0].Equal(Before(a, b)) || !chain[1].Equal(Before(b, c)) {
		t.Fatal("chain must order successive pairs")
	}
	fj := ForkJoin(a, []algebra.Symbol{b}, c)
	if len(fj) != 2 {
		t.Fatalf("forkjoin deps: %d", len(fj))
	}
}

func TestMutexPairMatchesPaper(t *testing.T) {
	got := MutexPair(sym("b1[?x]"), sym("e1[?x]"), sym("b2[?y]"))
	want := algebra.MustParse("b2[?y] . b1[?x] + ~e1[?x] + ~b2[?y] + e1[?x] . b2[?y]")
	if !got.Equal(want) {
		t.Fatalf("mutex: got %v want %v", got, want)
	}
}

func TestTravelWorkflow(t *testing.T) {
	w := Travel(sym("s_buy"), sym("c_buy"), sym("s_book"), sym("c_book"), sym("s_cancel"), false)
	if len(w.Deps) != 3 || w.Name(1) != "order" {
		t.Fatalf("travel: %d deps, name %q", len(w.Deps), w.Name(1))
	}
	if !w.Deps[0].Equal(algebra.MustParse("~s_buy + s_book")) {
		t.Fatalf("dep1: %v", w.Deps[0])
	}
	if !w.Deps[1].Equal(algebra.MustParse("~c_buy + c_book . c_buy")) {
		t.Fatalf("dep2: %v", w.Deps[1])
	}
	strengthened := Travel(sym("s_buy"), sym("c_buy"), sym("s_book"), sym("c_book"), sym("s_cancel"), true)
	if len(strengthened.Deps) != 4 {
		t.Fatalf("strengthened: %d deps", len(strengthened.Deps))
	}
	if !strengthened.Deps[3].Equal(algebra.MustParse("~s_cancel + ~c_buy")) {
		t.Fatalf("dep4: %v", strengthened.Deps[3])
	}
}
