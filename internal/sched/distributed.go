package sched

import (
	"fmt"
	"sort"

	"repro/internal/actor"
	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/gprog"
	"repro/internal/simnet"
	"repro/internal/temporal"
)

// trueProg is the shared compiled ⊤/⊤ program for unconstrained
// actors created lazily at attempt time.
var trueProg = gprog.Compile(
	gprog.GuardInput{Guard: temporal.TrueF()},
	gprog.GuardInput{Guard: temporal.TrueF()})

// siteHost demultiplexes the messages arriving at one site among the
// actors and agents living there.
type siteHost struct {
	site   simnet.SiteID
	actors map[string]*actor.Actor // by base-event key
	// order lists the actor keys sorted; broadcast fan-out must follow
	// it, never the map, or co-located actors process one delivery in a
	// different order each run and the replayed Lamport stamps drift.
	order  []string
	agents map[string]*agentRun // by awaited symbol key
}

func newSiteHost(site simnet.SiteID) *siteHost {
	return &siteHost{
		site:   site,
		actors: map[string]*actor.Actor{},
		agents: map[string]*agentRun{},
	}
}

// addActor registers an actor under its base-event key, keeping the
// broadcast order sorted.
func (h *siteHost) addActor(key string, a *actor.Actor) {
	h.actors[key] = a
	i := sort.SearchStrings(h.order, key)
	h.order = append(h.order, "")
	copy(h.order[i+1:], h.order[i:])
	h.order[i] = key
}

func (h *siteHost) Handle(n *simnet.Network, m simnet.Message) {
	switch msg := m.Payload.(type) {
	case actor.AttemptMsg:
		h.actor(msg.Sym).Handle(n, m)
	case actor.AnnounceMsg:
		for _, k := range h.order {
			h.actors[k].Handle(n, m)
		}
	case actor.InquireMsg:
		h.actor(msg.Target).Handle(n, m)
	case actor.InquireReplyMsg:
		h.actor(msg.Requester).Handle(n, m)
	case actor.ReleaseMsg:
		h.actor(msg.Target).Handle(n, m)
	case actor.NudgeMsg:
		for _, k := range h.order {
			h.actors[k].Handle(n, m)
		}
	case actor.DecisionMsg:
		if ag, ok := h.agents[msg.Sym.Key()]; ok {
			ag.onDecision(n, msg)
		}
	case agentTick:
		msg.agent.onTick(n, msg)
	default:
		panic(fmt.Sprintf("sched: site %s: unexpected payload %T", h.site, m.Payload))
	}
}

func (h *siteHost) actor(s algebra.Symbol) *actor.Actor {
	a, ok := h.actors[s.Base().Key()]
	if !ok {
		panic(fmt.Sprintf("sched: site %s has no actor for %s", h.site, s.Base()))
	}
	return a
}

// distributedSubmitter routes attempts to the event's actor site.
// Events outside the workflow alphabet — task transitions no
// dependency constrains, like a bare start — get an unconstrained
// (⊤-guard) actor created lazily at the attempting site: the
// specification says nothing about them, so they occur freely.
type distributedSubmitter struct {
	dir   *actor.Directory
	hosts map[simnet.SiteID]*siteHost
	hooks *actor.Hooks
	net   *simnet.Network
}

func (d *distributedSubmitter) DecisionSite(s algebra.Symbol) simnet.SiteID {
	site, err := d.dir.SiteOf(s)
	if err != nil {
		panic(err)
	}
	return site
}

func (d *distributedSubmitter) ensureActor(s algebra.Symbol, origin simnet.SiteID) simnet.SiteID {
	if site, err := d.dir.SiteOf(s); err == nil {
		return site
	}
	h, ok := d.hosts[origin]
	if !ok {
		h = newSiteHost(origin)
		d.hosts[origin] = h
		d.net.AddSite(origin, h)
	}
	b := s.Base()
	d.dir.Place(b, origin)
	a := actor.New(b, origin, d.dir, d.hooks,
		actor.GuardSpec{Guard: temporal.TrueF()}, actor.GuardSpec{Guard: temporal.TrueF()})
	a.AttachProgram(trueProg)
	h.addActor(b.Key(), a)
	return origin
}

func (d *distributedSubmitter) Attempt(n *simnet.Network, origin simnet.SiteID,
	s algebra.Symbol, forced bool, replyTo simnet.SiteID) {
	mAttempts.Inc()
	site := d.ensureActor(s, origin)
	n.Send(origin, site, actor.AttemptMsg{Sym: s, Forced: forced, ReplyTo: replyTo})
}

// installDistributed builds the directory, actors, and site hosts for
// the compiled workflow and returns the submitter plus the hosts (for
// agent registration).  noElim disables the consensus-elimination
// optimization (the P6 ablation).
func installDistributed(n *simnet.Network, c *core.Compiled, pl Placement,
	hooks *actor.Hooks, noElim bool) (Submitter, map[simnet.SiteID]*siteHost) {
	dir := actor.NewDirectory()
	hosts := map[simnet.SiteID]*siteHost{}
	host := func(site simnet.SiteID) *siteHost {
		h, ok := hosts[site]
		if !ok {
			h = newSiteHost(site)
			hosts[site] = h
			n.AddSite(site, h)
		}
		return h
	}
	bases := sortedBases(c.Workflow)
	for _, b := range bases {
		dir.Place(b, pl.SiteFor(b))
	}
	for _, b := range bases {
		site := pl.SiteFor(b)
		pos, neg := guardSpec(c, b, noElim), guardSpec(c, b.Complement(), noElim)
		a := actor.New(b, site, dir, hooks, pos, neg)
		a.AttachProgram(gprog.Compile(
			gprog.GuardInput{Guard: pos.Guard, LocalNeg: pos.LocalNeg},
			gprog.GuardInput{Guard: neg.Guard, LocalNeg: neg.LocalNeg}))
		host(site).addActor(b.Key(), a)
		for _, polKey := range []string{b.Key(), b.Complement().Key()} {
			eg := c.Guards[polKey]
			if eg == nil {
				continue
			}
			for _, w := range eg.Watches {
				dir.Subscribe(w, site)
			}
		}
	}
	return &distributedSubmitter{dir: dir, hosts: hosts, hooks: hooks, net: n}, hosts
}

// guardSpec assembles a polarity's guard spec from the compiled
// workflow.
func guardSpec(c *core.Compiled, s algebra.Symbol, noElim bool) actor.GuardSpec {
	spec := actor.GuardSpec{Guard: c.GuardOf(s)}
	if noElim {
		return spec
	}
	if eg, ok := c.Guards[s.Key()]; ok && len(eg.LocalNeg) > 0 {
		spec.LocalNeg = map[string]algebra.Symbol{}
		for key := range eg.LocalNeg {
			f, err := algebra.ParseSymbol(key)
			if err != nil {
				panic(err)
			}
			spec.LocalNeg[key] = f
		}
	}
	return spec
}
