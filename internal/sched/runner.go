package sched

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// Config describes one run.
type Config struct {
	// Workflow to enforce.
	Workflow *core.Workflow
	// Kind selects the scheduler implementation.
	Kind Kind
	// Placement of actors and agents; nil means all events on one
	// site ("s0").  Ignored by the centralized schedulers for
	// decisions (everything is decided at CentralSite) but still used
	// for agent sites.
	Placement Placement
	// Agents are the task agents driving the run.
	Agents []*AgentScript
	// Latency is the network model; the zero value selects
	// simnet.DefaultLatency.
	Latency simnet.LatencyModel
	// Seed makes the run reproducible.
	Seed int64
	// NoConsensusElimination disables the compile-time elimination of
	// ¬-literal agreement round trips (the P6 ablation; elimination is
	// on by default, matching the paper's conclusions).
	NoConsensusElimination bool
	// Triggerable lists symbols (text syntax, e.g. "s_cancel") the
	// scheduler may proactively trigger — §2's triggerable attribute.
	// Their actors may promise them before any attempt and
	// self-trigger on discharge.  Used by the distributed scheduler;
	// the centralized ones trigger through closeout.
	Triggerable []string
	// Closeout, when set, resolves every event after the agents drain
	// (attempting complements, then the events themselves), producing
	// a maximal trace — the scheduler triggering events "on its own
	// accord", §3.3.
	Closeout bool
	// MaxSteps bounds the simulation (0 = 1e6 deliveries).
	MaxSteps int
	// ActorLog, when set, receives a line per distributed-actor action
	// (debugging aid).
	ActorLog func(format string, args ...any)
	// Tracer receives the distributed actors' decision records; nil
	// falls back to the process-wide obs.Shared() tracer.
	Tracer *obs.Tracer
}

// Run executes the configuration and reports the outcome.
func Run(cfg Config) (*Report, error) {
	if cfg.Workflow == nil || len(cfg.Workflow.Deps) == 0 {
		return nil, fmt.Errorf("sched: config needs a workflow")
	}
	c, err := core.Compile(cfg.Workflow)
	if err != nil {
		return nil, err
	}
	return RunCompiled(c, cfg)
}

// RunCompiled is Run for a pre-compiled workflow (the benchmarks
// compile once and run many times).
func RunCompiled(c *core.Compiled, cfg Config) (*Report, error) {
	lat := cfg.Latency
	if lat == (simnet.LatencyModel{}) {
		lat = simnet.DefaultLatency()
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1_000_000
	}
	pl := cfg.Placement
	if pl == nil {
		pl = Placement{}
	}

	net := simnet.New(lat, cfg.Seed)
	col := NewCollector()
	hooks := col.Hooks()

	var sub Submitter
	hosts := map[simnet.SiteID]*siteHost{}
	switch cfg.Kind {
	case Distributed, "":
		sub, hosts = installDistributed(net, c, pl, hooks, cfg.NoConsensusElimination)
		tracer := cfg.Tracer
		if tracer == nil {
			tracer = obs.Shared()
		}
		// One run = one instance tag, so repeated runs into a shared
		// capture keep their per-instance invariants separable.
		inst := tracer.NextInst()
		for _, h := range hosts {
			for _, a := range h.actors {
				if cfg.ActorLog != nil {
					a.Log = cfg.ActorLog
				}
				a.Trace = tracer.Scope(string(a.Site()), inst)
			}
		}
		for _, key := range cfg.Triggerable {
			s, err := algebra.ParseSymbol(key)
			if err != nil {
				return nil, fmt.Errorf("sched: triggerable %q: %w", key, err)
			}
			h, ok := hosts[pl.SiteFor(s)]
			if !ok {
				return nil, fmt.Errorf("sched: triggerable %q: no actor site", key)
			}
			h.actor(s).SetTriggerable(s)
		}
	case CentralResiduation, CentralAutomata:
		sub, _ = installCentral(net, c, cfg.Kind, hooks)
	case CentralGuards:
		net.AddSite(CentralSite, newGuardCentral(c, hooks))
		sub = centralSubmitter{}
	default:
		return nil, fmt.Errorf("sched: unknown scheduler kind %q", cfg.Kind)
	}

	host := func(site simnet.SiteID) *siteHost {
		h, ok := hosts[site]
		if !ok {
			h = newSiteHost(site)
			hosts[site] = h
			net.AddSite(site, h)
		}
		return h
	}
	for _, ag := range cfg.Agents {
		if ag.Site == "" {
			return nil, fmt.Errorf("sched: agent %s needs a site", ag.ID)
		}
		run := newAgentRun(ag, sub, host(ag.Site))
		run.onLatency = col.addAgentLatency
		run.start(net)
	}

	net.Run(maxSteps)

	if cfg.Closeout {
		runCloseout(net, sub, col, c.Workflow, maxSteps)
	}

	report := &Report{
		Kind:           cfg.Kind,
		Trace:          col.Trace,
		Decisions:      col.Decisions,
		AgentLatencies: col.AgentLatencies,
		Stats:          net.Stats(),
		Satisfied:      core.SatisfiesAll(c.Workflow, col.Trace),
		Generated:      core.GeneratesCompiled(c, col.Trace),
	}
	if n := len(col.FireTimes); n > 0 {
		report.Makespan = col.FireTimes[n-1]
	}
	for _, b := range sortedBases(c.Workflow) {
		if !col.Resolved(b) {
			report.Unresolved = append(report.Unresolved, b.Key())
		}
	}
	return report, nil
}

// runCloseout drives the run to a maximal trace: for every unresolved
// event it first attempts the complement ("the event will never
// occur"); when a complement is rejected — the event is obligated — it
// attempts the event itself, triggering it.  Passes repeat until
// quiescence.
func runCloseout(net *simnet.Network, sub Submitter, col *Collector,
	w *core.Workflow, maxSteps int) {
	bases := sortedBases(w)
	triedComp := map[string]bool{}
	triedPos := map[string]bool{}
	for pass := 0; pass < 2*len(bases)+2; pass++ {
		progress := false
		for _, b := range bases {
			if col.Resolved(b) {
				continue
			}
			switch {
			case !triedComp[b.Key()]:
				triedComp[b.Key()] = true
				cb := b.Complement()
				sub.Attempt(net, sub.DecisionSite(cb), cb, false, "")
				progress = true
			case !triedPos[b.Key()]:
				triedPos[b.Key()] = true
				sub.Attempt(net, sub.DecisionSite(b), b, false, "")
				progress = true
			}
		}
		net.Run(maxSteps)
		allResolved := true
		for _, b := range bases {
			if !col.Resolved(b) {
				allResolved = false
				break
			}
		}
		if allResolved || !progress {
			return
		}
	}
}
