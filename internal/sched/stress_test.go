package sched_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/workload"
)

func sym(k string) algebra.Symbol {
	s, err := algebra.ParseSymbol(k)
	if err != nil {
		panic(err)
	}
	return s
}

// TestStressRandomWorkloads drives randomized workflows through all
// three schedulers under varied seeds and latencies, asserting the
// core contract: every run terminates with a valid, maximal trace that
// satisfies every dependency.
func TestStressRandomWorkloads(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	for iter := 0; iter < 12; iter++ {
		nEvents := 4 + r.Intn(5)
		nDeps := 2 + r.Intn(nEvents-1)
		wl := workload.Random(nDeps, nEvents, r.Int63(), 1+r.Intn(4))
		for _, kind := range sched.Kinds() {
			cfg := wl.Config(kind, r.Int63())
			cfg.Latency = simnet.LatencyModel{
				Local:  1 + simnet.Time(r.Intn(10)),
				Remote: 100 + simnet.Time(r.Intn(900)),
				Jitter: simnet.Time(r.Intn(400)),
			}
			rep, err := sched.Run(cfg)
			if err != nil {
				t.Fatalf("iter %d %s %s: %v", iter, wl.Name, kind, err)
			}
			if len(rep.Unresolved) != 0 {
				t.Fatalf("iter %d %s %s: unresolved %v (trace %v)",
					iter, wl.Name, kind, rep.Unresolved, rep.Trace)
			}
			if !rep.Satisfied {
				t.Fatalf("iter %d %s %s: trace %v violates the workflow",
					iter, wl.Name, kind, rep.Trace)
			}
			if !rep.Trace.Valid() || !rep.Trace.MaximalOver(wl.Workflow.Alphabet()) {
				t.Fatalf("iter %d %s %s: bad trace %v", iter, wl.Name, kind, rep.Trace)
			}
			if !rep.Generated {
				t.Fatalf("iter %d %s %s: Definition 4 violated on %v",
					iter, wl.Name, kind, rep.Trace)
			}
		}
	}
}

// TestStressAdversarialSchedules drives a fixed workflow with
// randomized agent schedules that mix events and complements, some of
// which must be rejected; whatever happens, realized traces stay
// legal.
func TestStressAdversarialSchedules(t *testing.T) {
	deps := []string{
		"~a + ~b + a . b",
		"~b + c",
		"~c + ~a + c . a",
	}
	w, err := core.ParseWorkflow(deps...)
	if err != nil {
		t.Fatal(err)
	}
	bases := []string{"a", "b", "c"}
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 25; iter++ {
		var agents []*sched.AgentScript
		perm := r.Perm(len(bases))
		for i, bi := range perm {
			name := bases[bi]
			s := sym(name)
			if r.Intn(3) == 0 {
				s = s.Complement()
			}
			agents = append(agents, &sched.AgentScript{
				ID:   fmt.Sprintf("ag-%d", i),
				Site: simnet.SiteID("s" + name),
				Steps: []sched.Step{
					{Sym: s, Think: simnet.Time(5 + r.Intn(200))},
				},
			})
		}
		for _, kind := range sched.Kinds() {
			rep, err := sched.Run(sched.Config{
				Workflow:  w,
				Kind:      kind,
				Placement: sched.Placement{"a": "sa", "b": "sb", "c": "sc"},
				Agents:    agents,
				Seed:      r.Int63(),
				Closeout:  true,
			})
			if err != nil {
				t.Fatalf("iter %d %s: %v", iter, kind, err)
			}
			if !rep.Satisfied || len(rep.Unresolved) != 0 {
				t.Fatalf("iter %d %s: satisfied=%v unresolved=%v trace=%v",
					iter, kind, rep.Satisfied, rep.Unresolved, rep.Trace)
			}
		}
	}
}

// TestStressConcurrentAttempts floods the distributed scheduler with
// near-simultaneous attempts of every event and its complement; the
// actors must serialize each pair (exactly one polarity occurs) and
// keep the trace legal.
func TestStressConcurrentAttempts(t *testing.T) {
	w, err := core.ParseWorkflow("~a + ~b + a . b", "~b + ~c + b . c")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 15; iter++ {
		var agents []*sched.AgentScript
		for i, name := range []string{"a", "b", "c"} {
			site := simnet.SiteID("s" + name)
			agents = append(agents,
				&sched.AgentScript{ID: fmt.Sprintf("pos-%d", i), Site: site,
					Steps: []sched.Step{{Sym: sym(name), Think: simnet.Time(1 + r.Intn(30))}}},
				&sched.AgentScript{ID: fmt.Sprintf("neg-%d", i), Site: site,
					Steps: []sched.Step{{Sym: sym("~" + name), Think: simnet.Time(1 + r.Intn(30))}}},
			)
		}
		rep, err := sched.Run(sched.Config{
			Workflow:  w,
			Kind:      sched.Distributed,
			Placement: sched.Placement{"a": "sa", "b": "sb", "c": "sc"},
			Agents:    agents,
			Seed:      r.Int63(),
			Closeout:  true,
		})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !rep.Satisfied || len(rep.Unresolved) != 0 {
			t.Fatalf("iter %d: satisfied=%v unresolved=%v trace=%v",
				iter, rep.Satisfied, rep.Unresolved, rep.Trace)
		}
		if !rep.Trace.Valid() {
			t.Fatalf("iter %d: polarity exclusion violated: %v", iter, rep.Trace)
		}
	}
}

// TestStressEliminationParity: with and without consensus elimination,
// randomized runs remain correct.
func TestStressEliminationParity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for iter := 0; iter < 8; iter++ {
		wl := workload.Random(4, 6, r.Int63(), 3)
		for _, noElim := range []bool{false, true} {
			cfg := wl.Config(sched.Distributed, r.Int63())
			cfg.NoConsensusElimination = noElim
			rep, err := sched.Run(cfg)
			if err != nil {
				t.Fatalf("iter %d noElim=%v: %v", iter, noElim, err)
			}
			if !rep.Satisfied || len(rep.Unresolved) != 0 {
				t.Fatalf("iter %d noElim=%v: satisfied=%v unresolved=%v trace=%v",
					iter, noElim, rep.Satisfied, rep.Unresolved, rep.Trace)
			}
		}
	}
}
