package sched

import (
	"fmt"

	"repro/internal/simnet"
	"repro/internal/task"
)

// AgentFromTask builds an agent script that walks a task instance
// (paper §2, Figure 1) through the scheduler: each plan entry is a
// significant event label of the skeleton, attempted in order with the
// given think time.
//
// Event attributes translate to protocol behavior: non-rejectable
// events (like abort) are attempted Forced — the scheduler has no
// choice but to accept them — and a rejected step falls back to the
// skeleton's abort event when one is possible, which is how a
// transaction whose commit is refused aborts instead.
func AgentFromTask(in *task.Instance, site simnet.SiteID, plan []string, think simnet.Time) (*AgentScript, error) {
	if site == "" {
		return nil, fmt.Errorf("sched: task agent %s needs a site", in.ID)
	}
	// Validate the plan against the skeleton by walking a copy.
	walk := *in
	script := &AgentScript{ID: in.ID, Site: site}
	for _, label := range plan {
		if err := walk.Apply(label); err != nil {
			return nil, fmt.Errorf("sched: task agent %s: %w", in.ID, err)
		}
		attrs := in.Skel.EventAttrsOf(label)
		step := Step{
			Sym:    in.Symbol(label),
			Forced: !attrs.Rejectable,
			Think:  think,
		}
		if attrs.Rejectable && label != "abort" && skeletonHasAbort(in.Skel) {
			step.OnReject = []Step{{
				Sym:    in.Symbol("abort"),
				Forced: true,
				Think:  think,
			}}
		}
		script.Steps = append(script.Steps, step)
	}
	// After the plan, declare the events that can no longer occur:
	// their complements are attempted so that dependencies on this
	// task's non-occurrence resolve (e.g. "commit only if the other
	// task never aborts" becomes decidable once it commits).
	occurred := map[string]bool{}
	for _, label := range plan {
		occurred[label] = true
	}
	reachable := in.Skel.ReachableEvents(walk.State)
	for _, label := range in.Skel.EventNames() {
		if occurred[label] || reachable[label] {
			continue
		}
		script.Steps = append(script.Steps, Step{
			Sym:   in.Symbol(label).Complement(),
			Think: think,
		})
	}
	return script, nil
}

func skeletonHasAbort(sk *task.Skeleton) bool {
	for _, e := range sk.EventNames() {
		if e == "abort" {
			return true
		}
	}
	return false
}
