package sched

import (
	"fmt"
	"sort"

	"repro/internal/actor"
	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/temporal"
)

// CentralSite is where both centralized schedulers live.
const CentralSite simnet.SiteID = "central"

// centralState is the shared machinery of the two centralized
// baselines; the stepper abstracts residuation vs automata.
type centralState struct {
	stepper  stepper
	hooks    *actor.Hooks
	occurred map[string]int64
	rejected map[string]bool
	parked   []parkedAttempt
	// bases are the workflow's base events; unresolved ones take part
	// in the joint-satisfiability search.
	bases []algebra.Symbol
	// peakParked tracks queueing at the central site.
	peakParked int
}

type parkedAttempt struct {
	sym         algebra.Symbol
	replyTo     simnet.SiteID
	attemptedAt simnet.Time
}

// stepper is the per-dependency state machine interface.
type stepper interface {
	// peek returns the dependency residuals that accepting the symbol
	// would produce, without mutating the state.
	peek(s algebra.Symbol) []*algebra.Expr
	// advance steps every dependency's state by the symbol.
	advance(s algebra.Symbol)
}

// residuationStepper steps dependencies symbolically (§3.3).
type residuationStepper struct {
	residuals []*algebra.Expr
}

func newResiduationStepper(w *core.Workflow) *residuationStepper {
	rs := &residuationStepper{}
	for _, d := range w.Deps {
		rs.residuals = append(rs.residuals, algebra.CNF(d))
	}
	return rs
}

func (rs *residuationStepper) peek(s algebra.Symbol) []*algebra.Expr {
	out := make([]*algebra.Expr, len(rs.residuals))
	for i, r := range rs.residuals {
		out[i] = algebra.Residuate(r, s)
	}
	return out
}

func (rs *residuationStepper) advance(s algebra.Symbol) {
	for i, r := range rs.residuals {
		rs.residuals[i] = algebra.Residuate(r, s)
	}
}

// automatonStepper precompiles each dependency's reachable residuals
// into an indexed DFA (the approach of reference [2]) and steps by
// table lookup.
type automatonStepper struct {
	dfas   []*dfa
	states []int
}

type dfa struct {
	// next[state][symbolKey] = successor state; symbols outside the
	// dependency's alphabet leave the state unchanged.
	next []map[string]int
	// exprs holds each state's residual expression (for the joint
	// satisfiability search).
	exprs []*algebra.Expr
	zero  int // index of the 0 state, or -1
}

// newAutomatonStepper compiles the workflow's dependencies to DFAs.
func newAutomatonStepper(w *core.Workflow) *automatonStepper {
	as := &automatonStepper{}
	for _, d := range w.Deps {
		as.dfas = append(as.dfas, compileDFA(d))
		as.states = append(as.states, 0)
	}
	return as
}

func compileDFA(d *algebra.Expr) *dfa {
	states := algebra.Reachable(d)
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	index := map[string]int{}
	// State 0 is the initial residual (CNF of d).
	start := algebra.CNF(d).Key()
	index[start] = 0
	next := 1
	for _, k := range keys {
		if k == start {
			continue
		}
		index[k] = next
		next++
	}
	a := &dfa{
		next:  make([]map[string]int, len(index)),
		exprs: make([]*algebra.Expr, len(index)),
		zero:  -1,
	}
	if z, ok := index["0"]; ok {
		a.zero = z
	}
	for k, edges := range states {
		row := map[string]int{}
		for symKey, succ := range edges {
			row[symKey] = index[succ.Key()]
		}
		a.next[index[k]] = row
		expr, err := algebra.Parse(k)
		if err != nil {
			panic(fmt.Sprintf("sched: unparseable residual %q: %v", k, err))
		}
		a.exprs[index[k]] = expr
	}
	return a
}

func (as *automatonStepper) peek(s algebra.Symbol) []*algebra.Expr {
	k := s.Key()
	out := make([]*algebra.Expr, len(as.dfas))
	for i, a := range as.dfas {
		st := as.states[i]
		if succ, ok := a.next[st][k]; ok {
			st = succ
		}
		out[i] = a.exprs[st]
	}
	return out
}

func (as *automatonStepper) advance(s algebra.Symbol) {
	k := s.Key()
	for i, a := range as.dfas {
		if succ, ok := a.next[as.states[i]][k]; ok {
			as.states[i] = succ
		}
	}
}

// StateCount returns the total number of DFA states (a compile-size
// metric for the benchmarks).
func (as *automatonStepper) StateCount() int {
	n := 0
	for _, a := range as.dfas {
		n += len(a.next)
	}
	return n
}

func newCentralState(st stepper, hooks *actor.Hooks, bases []algebra.Symbol) *centralState {
	return &centralState{
		stepper:  st,
		hooks:    hooks,
		occurred: map[string]int64{},
		rejected: map[string]bool{},
		bases:    bases,
	}
}

// acceptable reports whether the symbol may occur now: the advanced
// residuals must remain jointly satisfiable by some maximal completion
// of the remaining events.  Per-dependency residuation alone (§3.3,
// "the remnant of the dependency yet to be enforced") accepts events
// that doom the conjunction — e.g. leaving one residual at c and
// another at c̄ — so the centralized schedulers check the joint
// condition, up to a search budget.
func (cs *centralState) acceptable(s algebra.Symbol) bool {
	residuals := cs.stepper.peek(s)
	var remaining []algebra.Symbol
	for _, b := range cs.bases {
		if b.SameEvent(s) {
			continue
		}
		if cs.occurred[b.Key()] != 0 || cs.occurred[b.Complement().Key()] != 0 {
			continue
		}
		remaining = append(remaining, b)
	}
	budget := satBudget
	memo := map[string]bool{}
	return jointSatisfiable(residuals, remaining, memo, &budget)
}

// satBudget bounds the satisfiability search; on exhaustion the event
// is optimistically accepted (the behavior of the plain §3.3 rule).
const satBudget = 50_000

// jointSatisfiable reports whether some maximal completion over the
// remaining events drives every residual to a λ-satisfied state.
func jointSatisfiable(residuals []*algebra.Expr, remaining []algebra.Symbol,
	memo map[string]bool, budget *int) bool {
	if *budget <= 0 {
		return true // budget exhausted: optimistic
	}
	*budget--
	// Dead residual: no completion exists.
	mentioned := map[string]bool{}
	for _, r := range residuals {
		if r.IsZero() {
			return false
		}
		for k := range r.Gamma() {
			mentioned[k] = true
		}
	}
	// Events no residual mentions resolve freely; drop them.
	live := remaining[:0:0]
	for _, b := range remaining {
		if mentioned[b.Key()] || mentioned[b.Complement().Key()] {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		for _, r := range residuals {
			if !(algebra.Trace{}).Satisfies(r) {
				return false
			}
		}
		return true
	}
	key := stateKey(residuals, live)
	if v, ok := memo[key]; ok {
		return v
	}
	memo[key] = false // cycle guard (states only advance, but be safe)
	ok := false
	for i, b := range live {
		rest := make([]algebra.Symbol, 0, len(live)-1)
		rest = append(rest, live[:i]...)
		rest = append(rest, live[i+1:]...)
		for _, sym := range []algebra.Symbol{b, b.Complement()} {
			next := make([]*algebra.Expr, len(residuals))
			for j, r := range residuals {
				next[j] = algebra.Residuate(r, sym)
			}
			if jointSatisfiable(next, rest, memo, budget) {
				ok = true
				break
			}
		}
		if ok {
			break
		}
	}
	memo[key] = ok
	return ok
}

func stateKey(residuals []*algebra.Expr, remaining []algebra.Symbol) string {
	n := 0
	for _, r := range residuals {
		n += len(r.Key()) + 1
	}
	b := make([]byte, 0, n+len(remaining)*6)
	for _, r := range residuals {
		b = append(b, r.Key()...)
		b = append(b, ';')
	}
	b = append(b, '|')
	for _, s := range remaining {
		b = append(b, s.Key()...)
		b = append(b, ',')
	}
	return string(b)
}

// Handle processes attempts at the central site.
func (cs *centralState) Handle(n *simnet.Network, m simnet.Message) {
	msg, ok := m.Payload.(actor.AttemptMsg)
	if !ok {
		panic(fmt.Sprintf("sched: central: unexpected payload %T", m.Payload))
	}
	cs.onAttempt(n, msg, n.Now())
}

func (cs *centralState) onAttempt(n *simnet.Network, m actor.AttemptMsg, attemptedAt simnet.Time) {
	k := m.Sym.Key()
	switch {
	case cs.occurred[k] != 0:
		cs.decide(n, m.Sym, m.ReplyTo, attemptedAt, true, "already occurred")
		return
	case cs.rejected[k]:
		cs.decide(n, m.Sym, m.ReplyTo, attemptedAt, false, "already rejected")
		return
	case cs.occurred[m.Sym.Complement().Key()] != 0:
		cs.rejected[k] = true
		cs.decide(n, m.Sym, m.ReplyTo, attemptedAt, false, "complement occurred")
		return
	}
	if m.Forced || cs.acceptable(m.Sym) {
		cs.fire(n, m.Sym, m.ReplyTo, attemptedAt)
		return
	}
	cs.parked = append(cs.parked, parkedAttempt{sym: m.Sym, replyTo: m.ReplyTo, attemptedAt: attemptedAt})
	if len(cs.parked) > cs.peakParked {
		cs.peakParked = len(cs.parked)
	}
}

func (cs *centralState) fire(n *simnet.Network, s algebra.Symbol, replyTo simnet.SiteID, attemptedAt simnet.Time) {
	at := n.NextOccurrence()
	cs.occurred[s.Key()] = at
	cs.stepper.advance(s)
	if cs.hooks != nil && cs.hooks.OnFire != nil {
		cs.hooks.OnFire(s, at, n.Now())
	}
	cs.decide(n, s, replyTo, attemptedAt, true, "")
	cs.drainParked(n, s)
}

// drainParked re-examines parked attempts after an occurrence: the
// complement's parked attempt is rejected; others may have become
// acceptable.  Acceptance can cascade.
func (cs *centralState) drainParked(n *simnet.Network, justFired algebra.Symbol) {
	comp := justFired.Complement().Key()
	for progress := true; progress; {
		progress = false
		kept := cs.parked[:0]
		for _, p := range cs.parked {
			switch {
			case p.sym.Key() == comp || cs.occurred[p.sym.Complement().Key()] != 0:
				cs.rejected[p.sym.Key()] = true
				cs.decide(n, p.sym, p.replyTo, p.attemptedAt, false, "complement occurred")
				progress = true
			case cs.acceptable(p.sym):
				at := n.NextOccurrence()
				cs.occurred[p.sym.Key()] = at
				cs.stepper.advance(p.sym)
				if cs.hooks != nil && cs.hooks.OnFire != nil {
					cs.hooks.OnFire(p.sym, at, n.Now())
				}
				cs.decide(n, p.sym, p.replyTo, p.attemptedAt, true, "")
				progress = true
			default:
				kept = append(kept, p)
			}
		}
		cs.parked = kept
	}
}

func (cs *centralState) decide(n *simnet.Network, s algebra.Symbol, replyTo simnet.SiteID,
	attemptedAt simnet.Time, accepted bool, reason string) {
	d := actor.DecisionMsg{
		Sym: s, Accepted: accepted, At: cs.occurred[s.Key()],
		AttemptedAt: attemptedAt, DecidedAt: n.Now(), Reason: reason,
	}
	if cs.hooks != nil && cs.hooks.OnDecision != nil {
		cs.hooks.OnDecision(d)
	}
	if replyTo != "" {
		n.Send(CentralSite, replyTo, d)
	}
}

// centralSubmitter routes every attempt to the central site.
type centralSubmitter struct{}

func (centralSubmitter) DecisionSite(algebra.Symbol) simnet.SiteID { return CentralSite }

func (centralSubmitter) Attempt(n *simnet.Network, origin simnet.SiteID,
	s algebra.Symbol, forced bool, replyTo simnet.SiteID) {
	mAttempts.Inc()
	n.Send(origin, CentralSite, actor.AttemptMsg{Sym: s, Forced: forced, ReplyTo: replyTo})
}

// installCentral wires a centralized scheduler (residuation or
// automata per kind) and client agent sites.
func installCentral(n *simnet.Network, c *core.Compiled, kind Kind,
	hooks *actor.Hooks) (Submitter, *centralState) {
	var st stepper
	if kind == CentralAutomata {
		st = newAutomatonStepper(c.Workflow)
	} else {
		st = newResiduationStepper(c.Workflow)
	}
	cs := newCentralState(st, hooks, sortedBases(c.Workflow))
	n.AddSite(CentralSite, cs)
	return centralSubmitter{}, cs
}

// guardCentral is the Günthör-style baseline the paper's conclusions
// mention ("Günthör's approach is based on temporal logic, but
// centralized"): a single site holds every compiled guard and the
// global occurrence history, and admits an event exactly when its
// guard is true of that history.  It shares the distributed
// scheduler's decision semantics minus the protocol — and the
// centralized schedulers' single-site bottleneck.
type guardCentral struct {
	compiled *core.Compiled
	hooks    *actor.Hooks
	know     temporal.Knowledge
	occurred map[string]int64
	rejected map[string]bool
	parked   []parkedAttempt
	// residual caches the knowledge-reduced guard per event, with the
	// knowledge version it was reduced at; re-attempts and drainParked
	// passes re-reduce the residual only when the history grew instead
	// of reducing the full compiled formula every time.
	residual   map[string]temporal.Formula
	reducedVer map[string]uint64
}

func newGuardCentral(c *core.Compiled, hooks *actor.Hooks) *guardCentral {
	return &guardCentral{
		compiled:   c,
		hooks:      hooks,
		occurred:   map[string]int64{},
		rejected:   map[string]bool{},
		residual:   map[string]temporal.Formula{},
		reducedVer: map[string]uint64{},
	}
}

func (gc *guardCentral) Handle(n *simnet.Network, m simnet.Message) {
	msg, ok := m.Payload.(actor.AttemptMsg)
	if !ok {
		panic(fmt.Sprintf("sched: guard central: unexpected payload %T", m.Payload))
	}
	gc.onAttempt(n, msg, n.Now())
}

func (gc *guardCentral) onAttempt(n *simnet.Network, m actor.AttemptMsg, attemptedAt simnet.Time) {
	k := m.Sym.Key()
	switch {
	case gc.occurred[k] != 0:
		gc.decide(n, m.Sym, m.ReplyTo, attemptedAt, true, "already occurred")
		return
	case gc.rejected[k]:
		gc.decide(n, m.Sym, m.ReplyTo, attemptedAt, false, "already rejected")
		return
	case gc.occurred[m.Sym.Complement().Key()] != 0:
		gc.rejected[k] = true
		gc.decide(n, m.Sym, m.ReplyTo, attemptedAt, false, "complement occurred")
		return
	}
	if m.Forced {
		gc.fire(n, m.Sym, m.ReplyTo, attemptedAt)
		return
	}
	switch gc.evalGuard(m.Sym) {
	case temporal.True:
		gc.fire(n, m.Sym, m.ReplyTo, attemptedAt)
	case temporal.False:
		gc.rejected[k] = true
		gc.decide(n, m.Sym, m.ReplyTo, attemptedAt, false, "guard false")
	default:
		gc.parked = append(gc.parked, parkedAttempt{sym: m.Sym, replyTo: m.ReplyTo, attemptedAt: attemptedAt})
	}
}

// evalGuard evaluates the compiled guard against the global history
// and decides eagerly, with the central scheduler's authority: a ◇
// requirement whose unoccurred members are still possible is accepted
// as an obligation — the members are promised (bindingly), so their
// complements are rejected from then on.  ¬ literals are immediately
// decidable because the history is complete.
func (gc *guardCentral) evalGuard(s algebra.Symbol) temporal.Tri {
	k := s.Key()
	g, cached := gc.residual[k]
	if !cached {
		g = gc.compiled.GuardOf(s)
	}
	if v := gc.know.Version(); !cached || gc.reducedVer[k] != v {
		g = gc.know.Reduce(g)
		gc.residual[k] = g
		gc.reducedVer[k] = v
	}
	if g.IsTrue() {
		return temporal.True
	}
	if g.IsFalse() {
		return temporal.False
	}
	for _, p := range g.Products() {
		if obligations, ok := gc.productViable(p); ok {
			for _, ob := range obligations {
				gc.know.Promise(ob)
			}
			return temporal.True
		}
	}
	// No product is viable now; parked attempts are retried as the
	// history grows (permanent falsity is caught by Reduce above).
	return temporal.Unknown
}

// productViable checks one guard product against the complete history:
// □ and ¬ literals decide outright, and ◇ literals are viable when no
// member is impossible and the occurred members form an in-order
// prefix — the unoccurred suffix becomes the acceptance's obligations.
func (gc *guardCentral) productViable(p temporal.Product) ([]algebra.Symbol, bool) {
	var obligations []algebra.Symbol
	for _, l := range p.Lits() {
		switch l.Kind() {
		case temporal.LitOccurred:
			if gc.know.Status(l.Sym()) != temporal.StatusOccurred {
				return nil, false
			}
		case temporal.LitNotYet:
			if gc.know.Status(l.Sym()) == temporal.StatusOccurred {
				return nil, false
			}
		case temporal.LitEventually:
			lastOcc := int64(-1)
			inPrefix := true
			for _, m := range l.Syms() {
				switch gc.know.Status(m) {
				case temporal.StatusImpossible:
					return nil, false
				case temporal.StatusOccurred:
					if !inPrefix {
						return nil, false // occurred after an unoccurred member
					}
					t, _ := gc.know.Time(m)
					if t <= lastOcc {
						return nil, false // out of order
					}
					lastOcc = t
				default:
					inPrefix = false
					obligations = append(obligations, m)
				}
			}
		}
	}
	return obligations, true
}

func (gc *guardCentral) fire(n *simnet.Network, s algebra.Symbol, replyTo simnet.SiteID, attemptedAt simnet.Time) {
	at := n.NextOccurrence()
	gc.occurred[s.Key()] = at
	gc.know.Observe(s, at)
	if gc.hooks != nil && gc.hooks.OnFire != nil {
		gc.hooks.OnFire(s, at, n.Now())
	}
	gc.decide(n, s, replyTo, attemptedAt, true, "")
	gc.drainParked(n, s)
}

func (gc *guardCentral) drainParked(n *simnet.Network, justFired algebra.Symbol) {
	for progress := true; progress; {
		progress = false
		kept := gc.parked[:0]
		for _, p := range gc.parked {
			switch {
			case gc.occurred[p.sym.Complement().Key()] != 0:
				gc.rejected[p.sym.Key()] = true
				gc.decide(n, p.sym, p.replyTo, p.attemptedAt, false, "complement occurred")
				progress = true
			default:
				switch gc.evalGuard(p.sym) {
				case temporal.True:
					at := n.NextOccurrence()
					gc.occurred[p.sym.Key()] = at
					gc.know.Observe(p.sym, at)
					if gc.hooks != nil && gc.hooks.OnFire != nil {
						gc.hooks.OnFire(p.sym, at, n.Now())
					}
					gc.decide(n, p.sym, p.replyTo, p.attemptedAt, true, "")
					progress = true
				case temporal.False:
					gc.rejected[p.sym.Key()] = true
					gc.decide(n, p.sym, p.replyTo, p.attemptedAt, false, "guard false")
					progress = true
				default:
					kept = append(kept, p)
				}
			}
		}
		gc.parked = kept
	}
	_ = justFired
}

func (gc *guardCentral) decide(n *simnet.Network, s algebra.Symbol, replyTo simnet.SiteID,
	attemptedAt simnet.Time, accepted bool, reason string) {
	d := actor.DecisionMsg{
		Sym: s, Accepted: accepted, At: gc.occurred[s.Key()],
		AttemptedAt: attemptedAt, DecidedAt: n.Now(), Reason: reason,
	}
	if gc.hooks != nil && gc.hooks.OnDecision != nil {
		gc.hooks.OnDecision(d)
	}
	if replyTo != "" {
		n.Send(CentralSite, replyTo, d)
	}
}
