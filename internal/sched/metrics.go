package sched

import "repro/internal/obs"

// mAttempts counts scheduler-submitted attempts (all scheduler kinds),
// distinct from actor.attempts which counts deliveries: the gap between
// the two is attempts still in flight.
var mAttempts = obs.C("sched.attempts")
