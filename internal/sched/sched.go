// Package sched provides three executable schedulers for compiled
// workflows plus a run harness that drives them over the simulated
// network and reports comparable metrics:
//
//   - Distributed: the paper's event-centric scheduler (§4) — one
//     actor per event, placed at a configurable site, deciding from
//     local guards and messages.  No central component exists at run
//     time.
//   - CentralResiduation: the dependency-centric scheduler of §3.3 —
//     a single site holds every dependency's residual and steps it
//     symbolically on each event.  This is the design the paper's §4
//     improves on.
//   - CentralAutomata: the approach of the paper's reference [2] — a
//     finite automaton per dependency, precompiled from the reachable
//     residuals, stepped by table lookup at a central site.
//   - CentralGuards: the Günthör-style approach the conclusions cite
//     ("based on temporal logic, but centralized") — the compiled
//     guards evaluated at one site against the global history, with
//     ◇ requirements accepted eagerly as binding obligations.
//
// All three enforce the same contract: every realized maximal trace
// satisfies every dependency.  Their strategies differ — the
// centralized schedulers decide eagerly from global state, while the
// distributed one runs the inquiry/promise protocol — so their
// accepted/parked outcomes can differ on traces the specification
// leaves open; the correctness tests check trace satisfaction, and the
// benchmarks compare messages, latency, and queueing.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/actor"
	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/simnet"
)

// Kind selects a scheduler implementation.
type Kind string

// Scheduler kinds.
const (
	Distributed        Kind = "distributed"
	CentralResiduation Kind = "central-residuation"
	CentralAutomata    Kind = "central-automata"
	// CentralGuards is the Günthör-style baseline: compiled temporal
	// guards evaluated centrally against the global history.
	CentralGuards Kind = "central-guards"
)

// Kinds lists all scheduler kinds in comparison order.
func Kinds() []Kind {
	return []Kind{Distributed, CentralResiduation, CentralAutomata, CentralGuards}
}

// Placement maps base-event keys to the sites of their actors (and of
// the agents that attempt them).  Events without an entry default to
// site "s0".
type Placement map[string]simnet.SiteID

// SiteFor returns the placement of an event.
func (p Placement) SiteFor(s algebra.Symbol) simnet.SiteID {
	if site, ok := p[s.Base().Key()]; ok {
		return site
	}
	return "s0"
}

// RoundRobinPlacement spreads the workflow's events over n sites in
// alphabetical order.
func RoundRobinPlacement(w *core.Workflow, n int) Placement {
	if n < 1 {
		n = 1
	}
	pl := Placement{}
	for i, b := range w.Alphabet().Bases() {
		pl[b.Key()] = simnet.SiteID(fmt.Sprintf("s%d", i%n))
	}
	return pl
}

// Submitter injects attempts into a scheduler.
type Submitter interface {
	// DecisionSite returns the site where the event is decided.
	DecisionSite(s algebra.Symbol) simnet.SiteID
	// Attempt sends an attempt from the origin site.
	Attempt(n *simnet.Network, origin simnet.SiteID, s algebra.Symbol, forced bool, replyTo simnet.SiteID)
}

// Collector accumulates the run's outcomes via out-of-band hooks.
type Collector struct {
	Trace     algebra.Trace
	FireTimes []simnet.Time
	Decisions []actor.DecisionMsg
	// AgentLatencies are the agent-perceived attempt→decision round
	// trips, including both network legs.
	AgentLatencies []simnet.Time
	occurred       map[string]int64
	rejected       map[string]bool
}

func (c *Collector) addAgentLatency(l simnet.Time) {
	c.AgentLatencies = append(c.AgentLatencies, l)
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{occurred: map[string]int64{}, rejected: map[string]bool{}}
}

// Hooks returns actor hooks feeding this collector.
func (c *Collector) Hooks() *actor.Hooks {
	return &actor.Hooks{
		OnFire: func(s algebra.Symbol, at int64, when simnet.Time) {
			c.Trace = append(c.Trace, s)
			c.FireTimes = append(c.FireTimes, when)
			c.occurred[s.Key()] = at
		},
		OnDecision: func(d actor.DecisionMsg) {
			c.Decisions = append(c.Decisions, d)
			if !d.Accepted {
				c.rejected[d.Sym.Key()] = true
			}
		},
	}
}

// Occurred reports whether the symbol occurred.
func (c *Collector) Occurred(s algebra.Symbol) bool {
	_, ok := c.occurred[s.Key()]
	return ok
}

// Rejected reports whether an attempt of the symbol was rejected.
func (c *Collector) Rejected(s algebra.Symbol) bool { return c.rejected[s.Key()] }

// Resolved reports whether the event's fate is settled: one polarity
// occurred.
func (c *Collector) Resolved(base algebra.Symbol) bool {
	return c.Occurred(base.Base()) || c.Occurred(base.Base().Complement())
}

// Report summarizes a run.
type Report struct {
	Kind Kind
	// AgentLatencies are the agent-perceived attempt→decision round
	// trips.
	AgentLatencies []simnet.Time
	// Trace is the realized global occurrence sequence.
	Trace algebra.Trace
	// Decisions lists every accept/reject with latency data.
	Decisions []actor.DecisionMsg
	// Stats are the network's message statistics.
	Stats simnet.Stats
	// Makespan is the simulation time when the last event fired.
	Makespan simnet.Time
	// Unresolved lists base events with neither polarity occurred
	// after closeout (a stall — none are expected in the shipped
	// workloads).
	Unresolved []string
	// Satisfied reports whether the realized trace satisfies every
	// dependency of the workflow.
	Satisfied bool
	// Generated reports Definition 4 on the realized trace: every
	// occurrence's compiled guard held at the moment it occurred.  By
	// Theorem 6 this tracks Satisfied on maximal traces; it serves as
	// a protocol-level invariant check of every run.
	Generated bool
}

// AvgLatency returns the mean agent-perceived attempt→decision round
// trip; when no agent latencies were recorded it falls back to the
// scheduler-side decision latencies.
func (r *Report) AvgLatency() simnet.Time {
	if n := len(r.AgentLatencies); n > 0 {
		var sum simnet.Time
		for _, l := range r.AgentLatencies {
			sum += l
		}
		return sum / simnet.Time(n)
	}
	if len(r.Decisions) == 0 {
		return 0
	}
	var sum simnet.Time
	for _, d := range r.Decisions {
		sum += d.DecidedAt - d.AttemptedAt
	}
	return sum / simnet.Time(len(r.Decisions))
}

// MaxLatency returns the worst agent-perceived round trip (or
// scheduler-side latency when no agent recorded one).
func (r *Report) MaxLatency() simnet.Time {
	var max simnet.Time
	for _, l := range r.AgentLatencies {
		if l > max {
			max = l
		}
	}
	if max > 0 {
		return max
	}
	for _, d := range r.Decisions {
		if l := d.DecidedAt - d.AttemptedAt; l > max {
			max = l
		}
	}
	return max
}

// MessagesPerEvent returns total messages divided by occurred events.
func (r *Report) MessagesPerEvent() float64 {
	if len(r.Trace) == 0 {
		return 0
	}
	return float64(r.Stats.Messages) / float64(len(r.Trace))
}

func sortedBases(w *core.Workflow) []algebra.Symbol {
	bases := w.Alphabet().Bases()
	sort.Slice(bases, func(i, j int) bool { return bases[i].Less(bases[j]) })
	return bases
}
