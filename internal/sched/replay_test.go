package sched_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/check"
	"repro/internal/sched"
	"repro/internal/workload"
)

// The golden-replay property: on the deterministic simulator, a fixed
// seed reproduces the decision trace byte for byte — same records,
// same Lamport stamps, same sequence numbers, same JSONL encoding.
// This is what makes a captured trace a faithful artifact of a run
// rather than a sample of one.
//
// Permitted nondeterminism, deliberately outside this test: the
// wall-clock transports (livenet, netwire) interleave goroutines
// freely, so their Lamport stamps and record interleavings vary run to
// run.  Their traces still satisfy every check.Trace invariant (the
// chaos suite asserts exactly that); only the simulator's virtual time
// promises bytewise replay.

// captureRun executes the workload on the distributed simulator
// scheduler with full tracing and returns the causally ordered JSONL
// encoding.
func captureRun(t *testing.T, wl *workload.Workload, seed int64) []byte {
	t.Helper()
	tracer := obs.NewTracer(1)
	tracer.Enable(true)
	cfg := wl.Config(sched.Distributed, seed)
	cfg.Tracer = tracer
	if _, err := sched.Run(cfg); err != nil {
		t.Fatal(err)
	}
	recs := tracer.Records()
	if len(recs) == 0 {
		t.Fatal("run captured no records")
	}
	for _, v := range check.Trace(recs) {
		t.Errorf("trace invariant: %s", v)
	}
	obs.SortCausal(recs)
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenReplay(t *testing.T) {
	workloads := []*workload.Workload{
		workload.Chain(8, 4),
		workload.Diamond(4, 4), // fork-join
		workload.Travel(3),
	}
	for _, wl := range workloads {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			const seed = 1996
			first := captureRun(t, wl, seed)
			second := captureRun(t, wl, seed)
			if !bytes.Equal(first, second) {
				t.Fatalf("replay diverged:\nfirst %d bytes, second %d bytes\n%s",
					len(first), len(second), firstDiff(first, second))
			}
			// A different seed must still verify, byte-equality aside.
			captureRun(t, wl, seed+1)
		})
	}
}

// firstDiff renders the first differing line pair for the failure
// message.
func firstDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  %s\n  %s", i+1, al[i], bl[i])
		}
	}
	return "traces are a prefix of each other"
}
