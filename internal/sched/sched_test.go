package sched

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/simnet"
)

func sym(k string) algebra.Symbol {
	s, err := algebra.ParseSymbol(k)
	if err != nil {
		panic(err)
	}
	return s
}

// travelWorkflow is Example 4: book a car alongside a non-refundable
// ticket purchase, with cancel compensating book.
func travelWorkflow(t *testing.T) *core.Workflow {
	t.Helper()
	w, err := core.ParseWorkflow(
		"~s_buy + s_book",
		"~c_buy + c_book . c_buy",
		"~c_book + c_buy + s_cancel",
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func travelPlacement() Placement {
	return Placement{
		"s_buy": "site-buy", "c_buy": "site-buy",
		"s_book": "site-book", "c_book": "site-book",
		"s_cancel": "site-cancel",
	}
}

func happyAgents() []*AgentScript {
	return []*AgentScript{
		{ID: "buy", Site: "site-buy", Steps: []Step{
			At(sym("s_buy"), 10),
			At(sym("c_buy"), 40),
		}},
		{ID: "book", Site: "site-book", Steps: []Step{
			At(sym("s_book"), 30),
			At(sym("c_book"), 20),
		}},
	}
}

func failureAgents() []*AgentScript {
	return []*AgentScript{
		{ID: "buy", Site: "site-buy", Steps: []Step{
			At(sym("s_buy"), 10),
			At(sym("~c_buy"), 40), // buy fails to commit
		}},
		{ID: "book", Site: "site-book", Steps: []Step{
			At(sym("s_book"), 30),
			At(sym("c_book"), 20),
		}},
	}
}

func runTravel(t *testing.T, kind Kind, agents []*AgentScript) *Report {
	t.Helper()
	r, err := Run(Config{
		Workflow:    travelWorkflow(t),
		Kind:        kind,
		Placement:   travelPlacement(),
		Agents:      agents,
		Seed:        1996,
		Triggerable: []string{"s_book", "s_cancel"},
		Closeout:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestTravelHappyPath: on all three schedulers, the committed run
// orders c_book before c_buy and satisfies every dependency.
func TestTravelHappyPath(t *testing.T) {
	for _, kind := range Kinds() {
		r := runTravel(t, kind, happyAgents())
		if len(r.Unresolved) != 0 {
			t.Fatalf("%s: unresolved %v (trace %v)", kind, r.Unresolved, r.Trace)
		}
		if !r.Satisfied {
			t.Fatalf("%s: trace %v violates the workflow", kind, r.Trace)
		}
		iBook, iBuy := r.Trace.Index(sym("c_book")), r.Trace.Index(sym("c_buy"))
		if iBuy < 0 {
			t.Fatalf("%s: c_buy must occur, trace %v", kind, r.Trace)
		}
		if iBook < 0 || iBook > iBuy {
			t.Fatalf("%s: c_book must precede c_buy, trace %v", kind, r.Trace)
		}
		if !r.Trace.Contains(sym("s_book")) {
			t.Fatalf("%s: s_book must occur once s_buy did, trace %v", kind, r.Trace)
		}
	}
}

// TestTravelCompensation: when buy fails to commit, cancel compensates
// book — the scheduler triggers s_cancel.
func TestTravelCompensation(t *testing.T) {
	for _, kind := range Kinds() {
		r := runTravel(t, kind, failureAgents())
		if len(r.Unresolved) != 0 {
			t.Fatalf("%s: unresolved %v (trace %v)", kind, r.Unresolved, r.Trace)
		}
		if !r.Satisfied {
			t.Fatalf("%s: trace %v violates the workflow", kind, r.Trace)
		}
		if !r.Trace.Contains(sym("s_cancel")) {
			t.Fatalf("%s: s_cancel must be triggered, trace %v", kind, r.Trace)
		}
		if !r.Trace.Contains(sym("~c_buy")) {
			t.Fatalf("%s: ~c_buy must occur, trace %v", kind, r.Trace)
		}
	}
}

// TestMaximalTraces: closeout produces maximal traces over the
// workflow alphabet.
func TestMaximalTraces(t *testing.T) {
	for _, kind := range Kinds() {
		w := travelWorkflow(t)
		r := runTravel(t, kind, happyAgents())
		if !r.Trace.MaximalOver(w.Alphabet()) {
			t.Fatalf("%s: trace %v not maximal", kind, r.Trace)
		}
		if !r.Trace.Valid() {
			t.Fatalf("%s: invalid trace %v", kind, r.Trace)
		}
	}
}

// TestDistributedLocalizesMessages: with events spread across sites,
// the centralized schedulers send every attempt remotely while the
// distributed one decides most events where they arise.
func TestDistributedLocalizesMessages(t *testing.T) {
	reports := map[Kind]*Report{}
	for _, kind := range Kinds() {
		reports[kind] = runTravel(t, kind, happyAgents())
	}
	d := reports[Distributed]
	c := reports[CentralResiduation]
	if c.Stats.PerSite[CentralSite] == 0 {
		t.Fatal("centralized run must funnel messages through the central site")
	}
	if d.Stats.PerSite[CentralSite] != 0 {
		t.Fatal("distributed run must have no central site")
	}
}

// TestCentralSchedulersAgree: the residuation and automata baselines
// implement identical decision rules, so with identical seeds their
// traces match exactly.
func TestCentralSchedulersAgree(t *testing.T) {
	for _, agents := range [][]*AgentScript{happyAgents(), failureAgents()} {
		a := runTravel(t, CentralResiduation, agents)
		b := runTravel(t, CentralAutomata, agents)
		if a.Trace.String() != b.Trace.String() {
			t.Fatalf("central traces differ: %v vs %v", a.Trace, b.Trace)
		}
	}
}

// TestKleinPrimitivesEndToEnd: D_< and D_→ running end-to-end on the
// distributed scheduler across attempt orders always realize legal
// traces.
func TestKleinPrimitivesEndToEnd(t *testing.T) {
	w, err := core.ParseWorkflow("~e + ~f + e . f", "~e + f")
	if err != nil {
		t.Fatal(err)
	}
	schedules := [][]Step{
		{At(sym("e"), 10), At(sym("f"), 10)},
		{At(sym("f"), 10), At(sym("e"), 10)},
		{At(sym("~e"), 10), At(sym("f"), 10)},
		{At(sym("e"), 10), At(sym("~f"), 10)},
	}
	for i, steps := range schedules {
		r, err := Run(Config{
			Workflow: w,
			Kind:     Distributed,
			Placement: Placement{
				"e": "se", "f": "sf",
			},
			Agents:   []*AgentScript{{ID: "drv", Site: "se", Steps: steps}},
			Seed:     int64(i + 1),
			Closeout: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Unresolved) != 0 {
			t.Fatalf("schedule %d: unresolved %v, trace %v", i, r.Unresolved, r.Trace)
		}
		if !r.Satisfied {
			t.Fatalf("schedule %d: trace %v violates the workflow", i, r.Trace)
		}
	}
}

// TestAgentRejectBranch: a rejected step diverts the agent to its
// OnReject continuation.
func TestAgentRejectBranch(t *testing.T) {
	w, err := core.ParseWorkflow("~e + ~f + e . f")
	if err != nil {
		t.Fatal(err)
	}
	// Occur ē; then attempt e (rejected), falling back to attempting f.
	agents := []*AgentScript{{ID: "a", Site: "s0", Steps: []Step{
		At(sym("~e"), 5),
		{Sym: sym("e"), Think: 5, OnReject: []Step{At(sym("f"), 5)}},
	}}}
	r, err := Run(Config{Workflow: w, Kind: Distributed, Agents: agents, Seed: 3, Closeout: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Trace.Contains(sym("f")) {
		t.Fatalf("reject branch must attempt f, trace %v", r.Trace)
	}
	if !r.Satisfied {
		t.Fatalf("trace %v violates D_<", r.Trace)
	}
}

// TestExample11EndToEnd: the mutual ◇ guards of Example 11 resolve on
// the full scheduler stack.
func TestExample11EndToEnd(t *testing.T) {
	w, err := core.ParseWorkflow("~e + f", "~f + e")
	if err != nil {
		t.Fatal(err)
	}
	agents := []*AgentScript{
		{ID: "ae", Site: "se", Steps: []Step{At(sym("e"), 10)}},
		{ID: "af", Site: "sf", Steps: []Step{At(sym("f"), 12)}},
	}
	r, err := Run(Config{
		Workflow:  w,
		Kind:      Distributed,
		Placement: Placement{"e": "se", "f": "sf"},
		Agents:    agents,
		Seed:      11,
		Closeout:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Trace.Contains(sym("e")) || !r.Trace.Contains(sym("f")) {
		t.Fatalf("both e and f must occur, trace %v", r.Trace)
	}
	if !r.Satisfied {
		t.Fatalf("trace %v violates the workflow", r.Trace)
	}
}

// TestReportMetrics: latency and message metrics are populated.
func TestReportMetrics(t *testing.T) {
	r := runTravel(t, Distributed, happyAgents())
	if r.Stats.Messages == 0 {
		t.Fatal("messages must be counted")
	}
	if r.Makespan == 0 {
		t.Fatal("makespan must be recorded")
	}
	if r.MessagesPerEvent() <= 0 {
		t.Fatal("messages per event must be positive")
	}
	if r.MaxLatency() < r.AvgLatency() {
		t.Fatal("max latency must dominate the average")
	}
}

// TestRunValidation: bad configurations are reported as errors.
func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing workflow must error")
	}
	w, _ := core.ParseWorkflow("~e + f")
	if _, err := Run(Config{Workflow: w, Kind: "warp-drive"}); err == nil {
		t.Fatal("unknown kind must error")
	}
	if _, err := Run(Config{Workflow: w, Agents: []*AgentScript{{ID: "x"}}}); err == nil {
		t.Fatal("agent without site must error")
	}
}

// TestDeterministicRuns: identical configs yield identical traces and
// stats.
func TestDeterministicRuns(t *testing.T) {
	a := runTravel(t, Distributed, happyAgents())
	b := runTravel(t, Distributed, happyAgents())
	if a.Trace.String() != b.Trace.String() {
		t.Fatalf("traces differ: %v vs %v", a.Trace, b.Trace)
	}
	if a.Stats.Messages != b.Stats.Messages {
		t.Fatalf("message counts differ: %d vs %d", a.Stats.Messages, b.Stats.Messages)
	}
}

// TestPlacementSpread: round-robin placement uses the requested number
// of sites.
func TestPlacementSpread(t *testing.T) {
	w, _ := core.ParseWorkflow("~a + b", "~c + d")
	pl := RoundRobinPlacement(w, 2)
	sites := map[simnet.SiteID]bool{}
	for _, s := range pl {
		sites[s] = true
	}
	if len(sites) != 2 {
		t.Fatalf("expected 2 sites, got %v", pl)
	}
	if RoundRobinPlacement(w, 0).SiteFor(sym("a")) == "" {
		t.Fatal("degenerate site count must still place")
	}
}

// TestConsensusEliminationSound: with and without the elimination,
// every workload of the suite realizes legal maximal traces; the
// optimized runs never use more messages.
func TestConsensusEliminationSound(t *testing.T) {
	w, err := core.ParseWorkflow("~e + ~f + e . f", "~f + ~g + f . g")
	if err != nil {
		t.Fatal(err)
	}
	for _, noElim := range []bool{false, true} {
		r, err := Run(Config{
			Workflow:               w,
			Kind:                   Distributed,
			Placement:              Placement{"e": "s1", "f": "s2", "g": "s3"},
			NoConsensusElimination: noElim,
			Agents: []*AgentScript{
				{ID: "a", Site: "s1", Steps: []Step{At(sym("e"), 10)}},
				{ID: "b", Site: "s2", Steps: []Step{At(sym("f"), 20)}},
				{ID: "c", Site: "s3", Steps: []Step{At(sym("g"), 30)}},
			},
			Seed:     5,
			Closeout: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Satisfied || len(r.Unresolved) != 0 {
			t.Fatalf("noElim=%v: satisfied=%v unresolved=%v trace=%v",
				noElim, r.Satisfied, r.Unresolved, r.Trace)
		}
	}
}

// TestLocalNegCompiled: the compiler marks D_<'s ¬f literal on e as
// locally decidable (f's guard always mentions e).
func TestLocalNegCompiled(t *testing.T) {
	w, _ := core.ParseWorkflow("~e + ~f + e . f")
	c, err := core.Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	eg := c.Guards["e"]
	if eg == nil || !eg.LocalNeg["f"] {
		t.Fatalf("¬f on e must be locally decidable, got %v", eg.LocalNeg)
	}
	// An unconstrained f (⊤ guard) must require consensus.
	w2, _ := core.ParseWorkflow("~e + ~f + e . f", "f + ~f + g")
	_ = w2
}

// TestStrengthenedTravel uses the spec strengthening the paper
// discusses at the end of Example 4 (cancel only if buy never
// commits), which creates a three-way conditional cycle
// (c_book needs ◇c_buy, c_buy needs ◇~s_cancel, ~s_cancel needs
// ◇c_buy) that only chained conditional promises can unwind.
func TestStrengthenedTravel(t *testing.T) {
	w, err := core.ParseWorkflow(
		"~s_buy + s_book",
		"~c_buy + c_book . c_buy",
		"~c_book + c_buy + s_cancel",
		"~s_cancel + ~c_buy",
	)
	if err != nil {
		t.Fatal(err)
	}
	run := func(second Step) *Report {
		r, err := Run(Config{
			Workflow:  w,
			Kind:      Distributed,
			Placement: travelPlacement(),
			Agents: []*AgentScript{
				{ID: "buy", Site: "site-buy", Steps: []Step{At(sym("s_buy"), 10), second}},
				{ID: "book", Site: "site-book", Steps: []Step{At(sym("s_book"), 30), At(sym("c_book"), 20)}},
			},
			Seed:        1996,
			Triggerable: []string{"s_book", "s_cancel", "~s_cancel"},
			Closeout:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Committed: the cycle unwinds, everything commits, no cancel.
	r := run(At(sym("c_buy"), 40))
	if !r.Satisfied || len(r.Unresolved) != 0 {
		t.Fatalf("committed: satisfied=%v unresolved=%v trace=%v", r.Satisfied, r.Unresolved, r.Trace)
	}
	for _, want := range []string{"c_book", "c_buy", "~s_cancel"} {
		if !r.Trace.Contains(sym(want)) {
			t.Fatalf("committed: %s must occur, trace %v", want, r.Trace)
		}
	}
	iBook, iBuy := r.Trace.Index(sym("c_book")), r.Trace.Index(sym("c_buy"))
	if iBook > iBuy {
		t.Fatalf("committed: c_book must precede c_buy, trace %v", r.Trace)
	}

	// Compensated: buy never commits, cancel is triggered, book still
	// commits (covered by the cancel).
	r = run(At(sym("~c_buy"), 40))
	if !r.Satisfied || len(r.Unresolved) != 0 {
		t.Fatalf("compensated: satisfied=%v unresolved=%v trace=%v", r.Satisfied, r.Unresolved, r.Trace)
	}
	if !r.Trace.Contains(sym("s_cancel")) {
		t.Fatalf("compensated: s_cancel must occur, trace %v", r.Trace)
	}
}

// TestPromiseChainTriple: a minimal three-actor promise cycle —
// a needs ◇b, b needs ◇c, c needs ◇a — commits atomically once all
// three are attempted.
func TestPromiseChainTriple(t *testing.T) {
	w, err := core.ParseWorkflow("~a + b", "~b + c", "~c + a")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{
		Workflow:  w,
		Kind:      Distributed,
		Placement: Placement{"a": "sa", "b": "sb", "c": "sc"},
		Agents: []*AgentScript{
			{ID: "aa", Site: "sa", Steps: []Step{At(sym("a"), 10)}},
			{ID: "ab", Site: "sb", Steps: []Step{At(sym("b"), 20)}},
			{ID: "ac", Site: "sc", Steps: []Step{At(sym("c"), 30)}},
		},
		Seed:     13,
		Closeout: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a", "b", "c"} {
		if !r.Trace.Contains(sym(want)) {
			t.Fatalf("all of a,b,c must occur, trace %v", r.Trace)
		}
	}
	if !r.Satisfied {
		t.Fatalf("trace %v violates the workflow", r.Trace)
	}
}
