package sched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/task"
)

// TestAgentFromTaskPlans: scripts derive symbols and attributes from
// the skeleton.
func TestAgentFromTaskPlans(t *testing.T) {
	in, err := task.NewInstance(task.Transaction(), "buy")
	if err != nil {
		t.Fatal(err)
	}
	ag, err := AgentFromTask(in, "s-buy", []string{"start", "commit"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ag.Steps) != 3 {
		t.Fatalf("steps: %d (plan + abort declaration)", len(ag.Steps))
	}
	if ag.Steps[2].Sym.Key() != "~abort_buy" {
		t.Fatalf("declaration step: %v", ag.Steps[2].Sym)
	}
	if ag.Steps[0].Sym.Key() != "start_buy" || ag.Steps[1].Sym.Key() != "commit_buy" {
		t.Fatalf("symbols: %v %v", ag.Steps[0].Sym, ag.Steps[1].Sym)
	}
	if ag.Steps[0].Forced || ag.Steps[1].Forced {
		t.Fatal("rejectable events must not be forced")
	}
	// Commit's fallback is a forced abort.
	if len(ag.Steps[1].OnReject) != 1 || ag.Steps[1].OnReject[0].Sym.Key() != "abort_buy" ||
		!ag.Steps[1].OnReject[0].Forced {
		t.Fatalf("commit fallback: %+v", ag.Steps[1].OnReject)
	}
}

func TestAgentFromTaskValidatesPlan(t *testing.T) {
	in, _ := task.NewInstance(task.Transaction(), "x")
	if _, err := AgentFromTask(in, "s", []string{"commit"}, 1); err == nil {
		t.Fatal("commit before start must be rejected")
	}
	if _, err := AgentFromTask(in, "", []string{"start"}, 1); err == nil {
		t.Fatal("missing site must be rejected")
	}
}

// TestTwoTransactionsEndToEnd: two transaction instances coordinated
// by intertask dependencies, driven entirely through task agents.
// The dependency orders inv's commit before pay's commit; when inv
// aborts instead, pay's commit is rejected and its agent falls back to
// a forced abort — the Figure 1 lifecycle on the real scheduler.
func TestTwoTransactionsEndToEnd(t *testing.T) {
	inv, _ := task.NewInstance(task.Transaction(), "inv")
	pay, _ := task.NewInstance(task.Transaction(), "pay")
	w := core.NewWorkflow(
		// commit_pay only after commit_inv:
		dep.Enables(inv.Symbol("commit"), pay.Symbol("commit")),
		// if inv aborts, pay must not commit:
		dep.OnlyIfNever(pay.Symbol("commit"), inv.Symbol("abort")),
	)

	// Committed run.
	agInv, err := AgentFromTask(inv, "s-inv", []string{"start", "commit"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	agPay, err := AgentFromTask(pay, "s-pay", []string{"start", "commit"}, 15)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{
		Workflow: w,
		Kind:     Distributed,
		Placement: Placement{
			"start_inv": "s-inv", "commit_inv": "s-inv", "abort_inv": "s-inv",
			"start_pay": "s-pay", "commit_pay": "s-pay", "abort_pay": "s-pay",
		},
		Agents:   []*AgentScript{agInv, agPay},
		Seed:     21,
		Closeout: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Satisfied || len(r.Unresolved) != 0 {
		t.Fatalf("commit run: satisfied=%v unresolved=%v trace=%v", r.Satisfied, r.Unresolved, r.Trace)
	}
	ci, cp := r.Trace.Index(sym("commit_inv")), r.Trace.Index(sym("commit_pay"))
	if ci < 0 || cp < 0 || ci > cp {
		t.Fatalf("commit order wrong: %v", r.Trace)
	}

	// Aborted run: inv aborts (forced); pay's commit must be refused
	// and its agent abort instead.
	inv2, _ := task.NewInstance(task.Transaction(), "inv")
	pay2, _ := task.NewInstance(task.Transaction(), "pay")
	w2 := core.NewWorkflow(
		dep.Enables(inv2.Symbol("commit"), pay2.Symbol("commit")),
		dep.OnlyIfNever(pay2.Symbol("commit"), inv2.Symbol("abort")),
	)
	agInv2, err := AgentFromTask(inv2, "s-inv", []string{"start", "abort"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	agPay2, err := AgentFromTask(pay2, "s-pay", []string{"start", "commit"}, 15)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Config{
		Workflow: w2,
		Kind:     Distributed,
		Placement: Placement{
			"start_inv": "s-inv", "commit_inv": "s-inv", "abort_inv": "s-inv",
			"start_pay": "s-pay", "commit_pay": "s-pay", "abort_pay": "s-pay",
		},
		Agents:   []*AgentScript{agInv2, agPay2},
		Seed:     22,
		Closeout: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Satisfied || len(r2.Unresolved) != 0 {
		t.Fatalf("abort run: satisfied=%v unresolved=%v trace=%v", r2.Satisfied, r2.Unresolved, r2.Trace)
	}
	if !r2.Trace.Contains(sym("abort_inv")) {
		t.Fatalf("abort run: inv must abort, trace %v", r2.Trace)
	}
	if r2.Trace.Contains(sym("commit_pay")) {
		t.Fatalf("abort run: pay must not commit, trace %v", r2.Trace)
	}
	if !r2.Trace.Contains(sym("abort_pay")) {
		t.Fatalf("abort run: pay must fall back to abort, trace %v", r2.Trace)
	}
}
