package sched

import (
	"fmt"

	"repro/internal/actor"
	"repro/internal/algebra"
	"repro/internal/simnet"
)

// Step is one action of an agent's script: attempt an event after a
// think delay, then continue — or, if the attempt is rejected, switch
// to the OnReject continuation (e.g. "if commit is refused, abort").
type Step struct {
	Sym    algebra.Symbol
	Forced bool
	Think  simnet.Time
	// OnReject replaces the remaining script when this step's attempt
	// is rejected.
	OnReject []Step
}

// AgentScript is a serial task agent: it attempts its steps one at a
// time, each after the previous decision arrives (paper §2: the agent
// requests permission for controllable events and reports the rest).
type AgentScript struct {
	ID    string
	Site  simnet.SiteID
	Steps []Step
}

// At is a convenience constructor for a step.
func At(sym algebra.Symbol, think simnet.Time) Step {
	return Step{Sym: sym, Think: think}
}

// agentTick is the timer payload that fires an agent's next attempt.
type agentTick struct {
	agent *agentRun
}

// agentRun executes one script.
type agentRun struct {
	script *AgentScript
	sub    Submitter
	host   *siteHost
	queue  []Step
	done   bool
	// sentAt is when the outstanding attempt left the agent; used for
	// the agent-perceived decision latency.
	sentAt simnet.Time
	// onLatency, when set, receives each attempt's round-trip latency.
	onLatency func(simnet.Time)
}

func newAgentRun(script *AgentScript, sub Submitter, host *siteHost) *agentRun {
	return &agentRun{
		script: script,
		sub:    sub,
		host:   host,
		queue:  append([]Step(nil), script.Steps...),
	}
}

// start schedules the first attempt.
func (a *agentRun) start(n *simnet.Network) {
	a.scheduleNext(n)
}

func (a *agentRun) scheduleNext(n *simnet.Network) {
	if len(a.queue) == 0 {
		a.done = true
		return
	}
	n.After(a.script.Site, a.queue[0].Think, agentTick{agent: a})
}

func (a *agentRun) onTick(n *simnet.Network, _ agentTick) {
	if len(a.queue) == 0 {
		return
	}
	step := a.queue[0]
	key := step.Sym.Key()
	if other, taken := a.host.agents[key]; taken && other != a {
		panic(fmt.Sprintf("sched: two agents await the same event %s", key))
	}
	a.host.agents[key] = a
	a.sentAt = n.Now()
	a.sub.Attempt(n, a.script.Site, step.Sym, step.Forced, a.script.Site)
}

func (a *agentRun) onDecision(n *simnet.Network, d actor.DecisionMsg) {
	if len(a.queue) == 0 || !a.queue[0].Sym.Equal(d.Sym) {
		return // stale duplicate (e.g. re-acknowledged attempt)
	}
	step := a.queue[0]
	delete(a.host.agents, step.Sym.Key())
	if a.onLatency != nil {
		a.onLatency(n.Now() - a.sentAt)
	}
	if d.Accepted {
		a.queue = a.queue[1:]
	} else {
		a.queue = append([]Step(nil), step.OnReject...)
	}
	a.scheduleNext(n)
}
