package sched

import (
	"math"
	"testing"

	"repro/internal/algebra"
	"repro/internal/simnet"
)

// TestReportMetricsEmptyTrace: a run that fired no events (an empty
// trace, possibly with messages on the wire) must report zero for the
// per-event and latency metrics — never NaN or ±Inf from a division by
// zero.
func TestReportMetricsEmptyTrace(t *testing.T) {
	r := &Report{
		Kind:  Distributed,
		Stats: simnet.Stats{Messages: 42, Remote: 7},
	}
	if got := r.MessagesPerEvent(); got != 0 {
		t.Errorf("MessagesPerEvent on empty trace: got %v, want 0", got)
	}
	if math.IsNaN(r.MessagesPerEvent()) || math.IsInf(r.MessagesPerEvent(), 0) {
		t.Error("MessagesPerEvent must not be NaN/Inf")
	}
	if got := r.AvgLatency(); got != 0 {
		t.Errorf("AvgLatency with no decisions: got %v, want 0", got)
	}
	if got := r.MaxLatency(); got != 0 {
		t.Errorf("MaxLatency with no decisions: got %v, want 0", got)
	}
}

// TestReportMetricsNonEmpty: the same metrics on a populated report.
func TestReportMetricsNonEmpty(t *testing.T) {
	r := &Report{
		Trace:          algebra.T("e", "f"),
		Stats:          simnet.Stats{Messages: 6},
		AgentLatencies: []simnet.Time{10, 30},
	}
	if got := r.MessagesPerEvent(); got != 3 {
		t.Errorf("MessagesPerEvent: got %v, want 3", got)
	}
	if got := r.AvgLatency(); got != 20 {
		t.Errorf("AvgLatency: got %v, want 20", got)
	}
	if got := r.MaxLatency(); got != 30 {
		t.Errorf("MaxLatency: got %v, want 30", got)
	}
}
