package sched

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
)

func residualsOf(t *testing.T, srcs ...string) []*algebra.Expr {
	t.Helper()
	out := make([]*algebra.Expr, len(srcs))
	for i, src := range srcs {
		out[i] = algebra.CNF(algebra.MustParse(src))
	}
	return out
}

func basesOf(t *testing.T, srcs ...string) []algebra.Symbol {
	t.Helper()
	w, err := core.ParseWorkflow(srcs...)
	if err != nil {
		t.Fatal(err)
	}
	return sortedBases(w)
}

func TestJointSatisfiable(t *testing.T) {
	cases := []struct {
		name      string
		residuals []string
		events    []string
		want      bool
	}{
		{"trivial", []string{"T"}, nil, true},
		{"dead residual", []string{"0", "T"}, nil, false},
		{"needs one event", []string{"e"}, []string{"e"}, true},
		{"conflict c and ~c", []string{"c", "~c"}, []string{"c"}, true},
		// c ∧ ~c: the single event c can satisfy only one of them.
		// (c as residual needs c to occur; ~c needs ~c.)  Unsat.
		{"order both ways", []string{"e . f", "f . e"}, []string{"e", "f"}, false},
		{"chain ok", []string{"~a + ~b + a . b", "~b + ~c + b . c"}, []string{"a", "b", "c"}, true},
	}
	for _, c := range cases {
		residuals := residualsOf(t, c.residuals...)
		srcs := append([]string(nil), c.residuals...)
		if len(c.events) > 0 {
			srcs = c.events
		}
		var remaining []algebra.Symbol
		for _, e := range c.events {
			remaining = append(remaining, sym(e))
		}
		budget := satBudget
		got := jointSatisfiable(residuals, remaining, map[string]bool{}, &budget)
		want := c.want
		if c.name == "conflict c and ~c" {
			want = false
		}
		if got != want {
			t.Errorf("%s: got %v want %v", c.name, got, want)
		}
		_ = srcs
	}
}

// TestCentralRejectsJointlyDoomedEvent reproduces the stress-found
// scenario: with a<b, b→c, c<a, accepting b after a would strand the
// conjunction at c ∧ c̄.  The joint check must park b, and the run as a
// whole must still complete legally (closeout resolves it).
func TestCentralRejectsJointlyDoomedEvent(t *testing.T) {
	w, err := core.ParseWorkflow(
		"~a + ~b + a . b",
		"~b + c",
		"~c + ~a + c . a",
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{CentralResiduation, CentralAutomata} {
		r, err := Run(Config{
			Workflow: w,
			Kind:     kind,
			Agents: []*AgentScript{
				{ID: "x", Site: "s0", Steps: []Step{
					At(sym("a"), 10), At(sym("b"), 10),
				}},
			},
			Seed:     3,
			Closeout: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Satisfied || len(r.Unresolved) != 0 {
			t.Fatalf("%s: satisfied=%v unresolved=%v trace=%v",
				kind, r.Satisfied, r.Unresolved, r.Trace)
		}
		// b must not have been accepted after a (it would doom the
		// conjunction); the legal outcomes resolve b negatively.
		ia, ib := r.Trace.Index(sym("a")), r.Trace.Index(sym("b"))
		if ia >= 0 && ib > ia {
			t.Fatalf("%s: b accepted after a dooms the run: %v", kind, r.Trace)
		}
	}
}

// TestAutomatonStateCount: the automata baseline's precompiled size.
func TestAutomatonStateCount(t *testing.T) {
	w, _ := core.ParseWorkflow("~e + ~f + e . f", "~e + f")
	as := newAutomatonStepper(w)
	if got := as.StateCount(); got != 5+5 {
		t.Fatalf("state count: got %d want 10 (5 for D_<, 5 for D_→)", got)
	}
}

// TestSteppersAgree: peek/advance of the two steppers produce the same
// residuals on random event sequences.
func TestSteppersAgree(t *testing.T) {
	w, _ := core.ParseWorkflow("~a + ~b + a . b", "~b + c", "~c + a")
	rs := newResiduationStepper(w)
	as := newAutomatonStepper(w)
	seq := []string{"a", "~c", "b"}
	for _, k := range seq {
		s := sym(k)
		rPeek, aPeek := rs.peek(s), as.peek(s)
		for i := range rPeek {
			if rPeek[i].Key() != aPeek[i].Key() {
				t.Fatalf("peek(%s)[%d]: residuation %q vs automata %q",
					k, i, rPeek[i].Key(), aPeek[i].Key())
			}
		}
		rs.advance(s)
		as.advance(s)
	}
	_ = basesOf
}

// TestCentralGuardsObligations: the Günthör-style baseline accepts ◇
// requirements eagerly as binding obligations and then rejects the
// obligated events' complements.
func TestCentralGuardsObligations(t *testing.T) {
	// e's guard under D_→ is ◇f: accepting e obligates f.
	w, _ := core.ParseWorkflow("~e + f")
	r, err := Run(Config{
		Workflow: w,
		Kind:     CentralGuards,
		Agents: []*AgentScript{
			{ID: "a", Site: "s0", Steps: []Step{
				At(sym("e"), 5),
				{Sym: sym("~f"), Think: 5, OnReject: []Step{At(sym("f"), 5)}},
			}},
		},
		Seed:     1,
		Closeout: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Trace.Contains(sym("e")) || !r.Trace.Contains(sym("f")) {
		t.Fatalf("e and its obligation f must occur: %v", r.Trace)
	}
	if !r.Satisfied || len(r.Unresolved) != 0 {
		t.Fatalf("satisfied=%v unresolved=%v", r.Satisfied, r.Unresolved)
	}
	// The complement ~f must have been rejected (f was promised).
	rejected := false
	for _, d := range r.Decisions {
		if d.Sym.Equal(sym("~f")) && !d.Accepted {
			rejected = true
		}
	}
	if !rejected {
		t.Fatalf("~f must be rejected once f is obligated: %+v", r.Decisions)
	}
}

// TestCentralGuardsOrdering: sequence guards hold centrally (c_book
// before c_buy in the travel workflow) — exercised via the suite, but
// asserted directly here.
func TestCentralGuardsOrdering(t *testing.T) {
	r := runTravel(t, CentralGuards, happyAgents())
	if !r.Satisfied || len(r.Unresolved) != 0 {
		t.Fatalf("satisfied=%v unresolved=%v trace=%v", r.Satisfied, r.Unresolved, r.Trace)
	}
	ib, ibuy := r.Trace.Index(sym("c_book")), r.Trace.Index(sym("c_buy"))
	if ib < 0 || ibuy < 0 || ib > ibuy {
		t.Fatalf("ordering violated: %v", r.Trace)
	}
}
