package engine_test

import (
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/spec"
)

// TestMetricsReadableWhileEngineRuns reads the registry — snapshot,
// diff, JSON encoding — concurrently with a multi-instance engine run.
// The counters the engine moves are atomics in the obs registry, so
// under -race this asserts the whole read path is synchronization-free
// to use from a scraper (the /debug/metrics handler) mid-run.
func TestMetricsReadableWhileEngineRuns(t *testing.T) {
	sp, err := spec.ParseString(`workflow w
dep ~b + a . b
event a site=s1
event b site=s2
agent g site=s1
  step a think=5
  step b think=10
`)
	if err != nil {
		t.Fatal(err)
	}

	before := obs.Default.Snapshot()
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			snap := obs.Default.Snapshot()
			snap.Diff(before)
			if err := snap.WriteJSON(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	if _, err := engine.Run(sp, engine.Options{Instances: 8, Seed: 11}); err != nil {
		t.Error(err)
	}
	stop.Store(true)
	wg.Wait()

	diff := obs.Default.Snapshot().Diff(before)
	if m, _ := diff.Get("engine.instances"); m.Value < 8 {
		t.Fatalf("engine.instances moved by %d, want >= 8", m.Value)
	}
}
