package engine_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/algebra"
	"repro/internal/arun"
	"repro/internal/engine"
	"repro/internal/mc"
	"repro/internal/spec"
)

// TestEngineOutcomesWithinAdmissibleSet closes the loop between the
// bounded model checker and the production scheduler: the checker
// enumerates (internal/mc) the exact set of admissible outcome
// fingerprints per spec, and a seed-and-jitter sweep of real engine
// runs must stay within it.  Where the exploration mode (mc.Explore)
// systematically walks the controllable transport's interleavings,
// this sweep samples the engine's own transport stack — per-instance
// simulators with widened jitter — so the code path the benchmarks and
// services run is covered too.
//
// Two tiers, mirroring the runner's contract ("drives the agents to
// completion (or stall)"): a complete outcome must be one of the
// admissible fingerprints exactly; a stalled outcome — the bounded
// closeout gave up with events unresolved, which adversarial jitter
// can force on non-confluent workloads like mutex — must still be
// SAFE: its realized partial trace must be a prefix of some admitted
// maximal trace, i.e. the scheduler may park but never commits an
// occurrence that makes the dependencies unsatisfiable.
func TestEngineOutcomesWithinAdmissibleSet(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.wf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no .wf specs under testdata/")
	}
	seeds := []int64{1, 7, 1996, 42424242}
	instances := 64
	if testing.Short() {
		seeds = seeds[:1]
		instances = 16
	}
	for _, p := range paths {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			f, err := os.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := spec.Parse(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			expected, skip, err := mc.AdmissibleFingerprints(sp, 12)
			if err != nil {
				t.Fatal(err)
			}
			if skip != "" {
				t.Logf("SKIPPED (not silently): %s: %s", p, skip)
				return
			}
			admitted, err := mc.AdmittedTraces(sp.Workflow, 12)
			if err != nil {
				t.Fatal(err)
			}
			distinct := map[string]bool{}
			stalls := 0
			for _, seed := range seeds {
				res, err := engine.Run(sp, engine.Options{
					Instances: instances, Seed: seed, Jitter: 2000, KeepOutcomes: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, out := range res.Outcomes {
					fp := out.Fingerprint()
					distinct[fp] = true
					if len(out.Unresolved) == 0 {
						if !expected[fp] {
							t.Errorf("seed %d: complete outcome outside the admissible set:\n  %s", seed, fp)
						}
						continue
					}
					stalls++
					if !prefixOfAdmitted(t, out, admitted) {
						t.Errorf("seed %d: stalled outcome is not a safe prefix of any admitted trace:\n  %s", seed, fp)
					}
				}
			}
			if stalls > 0 {
				t.Logf("STALLED (not silently): %d of %d instances parked before resolving every event; their partial traces are all safe prefixes", stalls, len(seeds)*instances)
			}
			t.Logf("%s: %d seeds × %d instances, %d distinct fingerprints vs %d admissible",
				filepath.Base(p), len(seeds), instances, len(distinct), len(expected))
		})
	}
}

// prefixOfAdmitted reports whether the outcome's realized occurrence
// order is a prefix of at least one admitted maximal trace.
func prefixOfAdmitted(t *testing.T, out *arun.Outcome, admitted []algebra.Trace) bool {
	t.Helper()
	got := make([]string, len(out.Trace))
	copy(got, out.Trace)
	for _, u := range admitted {
		if len(got) > len(u) {
			continue
		}
		ok := true
		for i, k := range got {
			if u[i].Key() != k {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
