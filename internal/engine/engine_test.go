package engine_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/arun"
	"repro/internal/engine"
	"repro/internal/simnet"
	"repro/internal/spec"
)

// engineSpecs are the differential workloads.  chain and fork are
// confluent: one maximal trace regardless of timing, so every engine
// instance must land on the serial oracle's fingerprint exactly.
// travel is order-sensitive — see the confluent map below.
func engineSpecs(t testing.TB) map[string]*spec.Spec {
	t.Helper()
	f, err := os.Open("../../testdata/travel.wf")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	travel, err := spec.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(src string) *spec.Spec {
		s, err := spec.ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return map[string]*spec.Spec{
		"travel": travel,
		"chain": parse(`workflow chain
dep ~b + a . b
dep ~c + b . c
dep ~d + c . d
event a site=s1
event b site=s2
event c site=s3
event d site=s4
agent w site=s1
  step a think=5
  step b think=5
  step c think=5
  step d think=5
`),
		"fork": parse(`workflow fork
dep ~l + start . l
dep ~r + start . r
dep ~join + l . join
dep ~join + r . join
event start site=s0
event l site=s1
event r site=s2
event join site=s3
agent left site=s1
  step start think=5
  step l think=10
agent right site=s2
  step r think=12
agent fin site=s3
  step join think=30
`),
	}
}

// oracleFingerprint runs the spec once, serially, on the default
// simulator — the single-instance oracle every engine instance must
// reproduce.
func oracleFingerprint(t testing.TB, sp *spec.Spec) string {
	t.Helper()
	r, err := arun.New(arun.NewSimTransport(1996, nil), sp, arun.Options{IdleTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Satisfied || len(out.Unresolved) > 0 {
		t.Fatalf("oracle run incomplete: %s", out.Fingerprint())
	}
	return out.Fingerprint()
}

func checkAgainstOracle(t *testing.T, res *engine.Result, want string, instances int) {
	t.Helper()
	total := 0
	for fp, n := range res.Fingerprints {
		total += n
		if fp != want {
			t.Errorf("%d instance(s) diverged from the oracle:\n oracle %s\n got    %s", n, want, fp)
		}
	}
	if total != instances {
		t.Errorf("fingerprints cover %d instances, want %d", total, instances)
	}
	if res.Fires == 0 || res.Decisions == 0 {
		t.Errorf("no observed activity: fires=%d decisions=%d", res.Fires, res.Decisions)
	}
}

// verifyResult applies the two-tier differential criterion to an
// engine run: confluent workloads must match the serial oracle's
// fingerprint in every instance; order-sensitive ones must still
// resolve every event, satisfy every dependency, and never record
// both polarities.  The run must use KeepOutcomes so the second tier
// can inspect each instance.
func verifyResult(t *testing.T, name string, sp *spec.Spec, res *engine.Result, instances int) {
	t.Helper()
	if confluent[name] {
		checkAgainstOracle(t, res, oracleFingerprint(t, sp), instances)
		return
	}
	if len(res.Outcomes) != instances {
		t.Fatalf("kept %d outcomes, want %d (order-sensitive verification needs KeepOutcomes)", len(res.Outcomes), instances)
	}
	for i, out := range res.Outcomes {
		checkComplete(t, fmt.Sprintf("instance %d", i), out)
	}
	if res.Fires == 0 || res.Decisions == 0 {
		t.Errorf("no observed activity: fires=%d decisions=%d", res.Fires, res.Decisions)
	}
}

// TestEngineMatchesOracleSim: a modest multi-instance sim run agrees
// with the serial oracle on every workload.
func TestEngineMatchesOracleSim(t *testing.T) {
	for name, sp := range engineSpecs(t) {
		t.Run(name, func(t *testing.T) {
			res, err := engine.Run(sp, engine.Options{Instances: 32, Workers: 4, Seed: 7, KeepOutcomes: true})
			if err != nil {
				t.Fatal(err)
			}
			verifyResult(t, name, sp, res, 32)
		})
	}
}

// TestEngineStress256 runs at least 256 concurrent instances per
// workload with widened per-instance jitter, so the interleavings
// inside each simulated mesh genuinely vary, and applies the two-tier
// differential criterion to every instance.  Runs under -race in the
// CI gate (make race / enginestress).
func TestEngineStress256(t *testing.T) {
	for name, sp := range engineSpecs(t) {
		t.Run(name, func(t *testing.T) {
			res, err := engine.Run(sp, engine.Options{
				Instances:    256,
				Workers:      16,
				Seed:         42,
				Jitter:       500,
				KeepOutcomes: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			verifyResult(t, name, sp, res, 256)
		})
	}
}

// TestEngineChaosSim: instances under seeded fault plans (modelled
// drops, duplicates, delays, reorders) still satisfy the differential
// criterion — the per-instance reliable link masks everything.
func TestEngineChaosSim(t *testing.T) {
	plans := []*simnet.FaultPlan{
		{Seed: 5, Drop: 0.25, Dup: 0.2, Delay: 0.2, Reorder: 0.1, RTO: 400},
		{Seed: 6, Drop: 0.5, RTO: 300},
	}
	for name, sp := range engineSpecs(t) {
		t.Run(name, func(t *testing.T) {
			for _, fp := range plans {
				res, err := engine.Run(sp, engine.Options{
					Instances: 24, Workers: 8, Seed: 11, Jitter: 300, Fault: fp,
					KeepOutcomes: true,
				})
				if err != nil {
					t.Fatalf("plan seed %d: %v", fp.Seed, err)
				}
				verifyResult(t, name, sp, res, 24)
			}
		})
	}
}

// confluent marks workloads whose outcome is invariant under timing:
// jitter seed, fault plans, and the pipelined drive's attempt overlap
// (verified by a 290-combination seed/plan sweep of the serial
// runtime).  travel is not in the set: its cancel/commit race
// legitimately resolves by whether the buy attempt finds the booking
// already propagated, so plain serial runs already diverge from the
// seed-1996 fingerprint at other jitter seeds (16, 20, 22, ... with
// no faults at all) — both outcomes are complete maximal traces.  For
// such workloads the engine asserts per-instance completeness
// invariants instead of oracle equality — the same tier the chaos
// suite applies to mutex.  See DESIGN.md, decision 13.
var confluent = map[string]bool{"chain": true, "fork": true}

// checkComplete asserts an outcome is a complete, consistent maximal
// trace (the order-sensitive tier of the differential criterion).
func checkComplete(t *testing.T, label string, out *arun.Outcome) {
	t.Helper()
	if !out.Satisfied {
		t.Errorf("%s: dependencies unsatisfied: %s", label, out.Fingerprint())
	}
	if len(out.Unresolved) > 0 {
		t.Errorf("%s: events unresolved: %s", label, out.Fingerprint())
	}
	for sym := range out.Occurred {
		if len(sym) > 0 && sym[0] != '~' {
			if _, both := out.Occurred["~"+sym]; both {
				t.Errorf("%s: %s occurred with both polarities: %s", label, sym, out.Fingerprint())
			}
		}
	}
}

// TestEngineNetMode: instances share one loopback TCP mesh with
// instance-tagged frames and per-instance completion.  Confluent
// workloads must agree with the sim oracle exactly; the order-
// sensitive travel workflow must still resolve completely and
// consistently in every instance.
func TestEngineNetMode(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP mesh engine run in -short mode")
	}
	for name, sp := range engineSpecs(t) {
		t.Run(name, func(t *testing.T) {
			res, err := engine.Run(sp, engine.Options{
				Instances: 48, Mode: engine.ModeNet,
				IdleTimeout: 30 * time.Second, KeepOutcomes: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			verifyResult(t, name, sp, res, 48)
		})
	}
}

// TestEngineChaosNet: the shared TCP mesh under a seeded fault plan —
// whole batch frames dropped, duplicated, and delayed — still drives
// every instance to the differential criterion, and the interleaved
// fan-out of concurrent instances actually exercises the batch path.
func TestEngineChaosNet(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP mesh chaos run in -short mode")
	}
	fp := &simnet.FaultPlan{Seed: 13, Drop: 0.25, Dup: 0.2, Delay: 0.15, DelayMax: 2000}
	for name, sp := range engineSpecs(t) {
		t.Run(name, func(t *testing.T) {
			res, err := engine.Run(sp, engine.Options{
				Instances: 16, Mode: engine.ModeNet, Fault: fp,
				IdleTimeout: 30 * time.Second, KeepOutcomes: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			verifyResult(t, name, sp, res, 16)
			if res.Batches == 0 {
				t.Error("concurrent instances produced no batch frames")
			}
		})
	}
}

// TestEngineKeepOutcomes: outcome retention returns one complete
// outcome per instance ID.
func TestEngineKeepOutcomes(t *testing.T) {
	sp := engineSpecs(t)["chain"]
	want := oracleFingerprint(t, sp)
	res, err := engine.Run(sp, engine.Options{Instances: 8, Workers: 3, KeepOutcomes: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 8 {
		t.Fatalf("kept %d outcomes, want 8", len(res.Outcomes))
	}
	for i, out := range res.Outcomes {
		if out == nil {
			t.Fatalf("instance %d outcome missing", i)
		}
		if out.Fingerprint() != want {
			t.Errorf("instance %d diverged: %s", i, out.Fingerprint())
		}
	}
}
