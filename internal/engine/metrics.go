package engine

import "repro/internal/obs"

// Engine metrics: completed instances and their end-to-end latency,
// bucketed from sub-millisecond sim instances up to second-scale wire
// runs (microseconds).
var (
	mInstances  = obs.C("engine.instances")
	mInstanceUS = obs.H("engine.instance_us",
		100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
		100_000, 250_000, 500_000, 1_000_000)
)

// planCounter is the per-plan instance counter: multi-plan hosts see
// one "engine.plan.<name>.instances" series per named spec, so a
// registry serving many workflows can attribute throughput per plan.
// Anonymous specs fold into "engine.plan._.instances".
func planCounter(name string) *obs.Counter {
	if name == "" {
		name = "_"
	}
	return obs.C("engine.plan." + name + ".instances")
}
