// Package engine executes many concurrent instances of one workflow:
// the multi-instance throughput layer over internal/arun.
//
// The serial drivers (cmd/wfrun, internal/bench) run one instance at a
// time and re-establish global quiescence after every attempt — sound,
// deterministic, and slow: the whole mesh stops between attempts, and
// every instance pays compilation and placement again.  This engine
// amortizes everything that does not depend on the run:
//
//   - one arun.Plan per workload: the workflow is compiled once, the
//     directory and guard specs are built once, and every instance
//     instantiates fresh actors against the shared, read-only plan;
//   - per-instance completion: instances observe decisions through
//     actor hooks and (on the wire transport) complete attempts when
//     their own decision resolves, not when the whole mesh goes idle —
//     internal/quiesce is demoted to a per-instance settle at the end
//     of each run (DESIGN.md, decision 13);
//   - a bounded worker pool sharded by instance ID, recycling the
//     runner's observation maps (arun.Scratch) and sharing a trace
//     satisfaction cache across instances;
//   - on the wire transport, all instances share one TCP mesh: frames
//     carry an actor.Instanced envelope, each node demultiplexes on
//     the instance number, and the batched announcement fan-out of
//     internal/netwire coalesces the interleaved traffic.
//
// Every instance still produces a full arun.Outcome; the engine
// aggregates their fingerprints, which is what the differential chaos
// tests compare against the single-instance simnet oracle.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/actor"
	"repro/internal/arun"
	"repro/internal/core"
	"repro/internal/netwire"
	"repro/internal/obs"
	"repro/internal/quiesce"
	"repro/internal/simnet"
	"repro/internal/spec"
)

// Mode selects the transport the instances run on.
type Mode int

const (
	// ModeSim runs each instance on its own deterministic simulator
	// (virtual time, zero wall-clock latency): the throughput mode and
	// the oracle for the chaos tests.
	ModeSim Mode = iota
	// ModeNet runs all instances over one shared loopback TCP mesh
	// with instance-tagged frames.
	ModeNet
)

// Options configure an engine run.
type Options struct {
	// Instances is the number of workflow instances to execute
	// (default 1).
	Instances int
	// Workers bounds concurrent instances.  Default: GOMAXPROCS for
	// ModeSim (CPU-bound virtual time), min(Instances, 32) for ModeNet
	// (latency-bound wire traffic).
	Workers int
	// Mode selects the transport (default ModeSim).
	Mode Mode
	// Seed makes sim runs deterministic; instance i uses Seed+i.
	Seed int64
	// Fault, when set, applies the chaos schedule — per instance on
	// sim, on the shared mesh links for net.
	Fault *simnet.FaultPlan
	// Compiled reuses a pre-compiled workflow (optional).
	Compiled *core.Compiled
	// NoPrograms disables the compiled guard programs, forcing every
	// actor onto the formula-tree evaluation path — the P14 ablation.
	NoPrograms bool
	// IdleTimeout bounds each instance's waits (default 15s).
	IdleTimeout time.Duration
	// PollInterval is the pipelined decision-wait slice on the net
	// transport (default 200µs).
	PollInterval time.Duration
	// Jitter widens the per-instance sim latency jitter (µs) so
	// message races genuinely vary across instances — the stress-test
	// knob.  Zero keeps the tight throughput latencies.
	Jitter simnet.Time
	// KeepOutcomes retains every instance's full outcome in the
	// result (costs memory at large N).
	KeepOutcomes bool
	// Tracer receives every instance's decision records, tagged with
	// the instance ID; nil falls back to obs.Shared().
	Tracer *obs.Tracer
	// WALRoot, on ModeNet, gives every mesh node a write-ahead log
	// under WALRoot/<site> — the P13 durability-overhead measurement
	// knob.  Multi-instance replay recovery is not supported: the log
	// records durability costs (and watermark checkpoints when
	// CheckpointEvery is set) but a crashed engine run is re-run, not
	// resumed.
	WALRoot string
	// WALNoSync skips per-batch fsync in WAL mode.
	WALNoSync bool
	// WALCommitInterval widens the mesh's shared group-commit window
	// (all node logs coalesce into one committer's fsync rounds); zero
	// commits as soon as the shared loop is free.
	WALCommitInterval time.Duration
	// CheckpointEvery enables periodic watermark checkpoints per node
	// in WAL mode.
	CheckpointEvery time.Duration
	// Plan reuses a pre-built arun.Plan (compiled workflow, directory,
	// guard specs) instead of building one from the spec — the
	// multi-plan hosting path: a registry (internal/serve) compiles
	// each named spec once and every engine run against it skips
	// compilation entirely.  When set, Compiled and NoPrograms are
	// ignored (the plan already embodies them).
	Plan *arun.Plan
}

// Result aggregates an engine run.
type Result struct {
	Instances, Workers int
	Elapsed            time.Duration
	// Fires and Decisions sum the instances' observed announcements
	// and decisions.
	Fires, Decisions int64
	// Fingerprints counts instances per outcome fingerprint; a
	// confluent workload has exactly one key.
	Fingerprints map[string]int
	// Outcomes holds each instance's outcome when KeepOutcomes is set,
	// indexed by instance ID.
	Outcomes []*arun.Outcome
	// Batches and BatchedFrames report the mesh's outbound coalescing
	// on ModeNet (zero on ModeSim): batch frames written and the
	// logical DATA records they carried.
	Batches, BatchedFrames int64
	// WALSyncs counts completed fsync batches across the mesh's node
	// logs (zero without WALRoot): appends/WALSyncs is the achieved
	// group-commit width.
	WALSyncs int64
}

// InstancesPerSec is the headline throughput rate.
func (r *Result) InstancesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Instances) / r.Elapsed.Seconds()
}

// FiresPerSec is the announcement (event occurrence) rate.
func (r *Result) FiresPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Fires) / r.Elapsed.Seconds()
}

// Run executes opt.Instances instances of the spec and aggregates the
// outcomes.  With opt.Plan set the spec argument is ignored and the
// pre-built plan is executed directly.
func Run(sp *spec.Spec, opt Options) (*Result, error) {
	plan := opt.Plan
	if plan == nil {
		var err error
		plan, err = arun.NewPlan(sp, arun.PlanOptions{Compiled: opt.Compiled, NoPrograms: opt.NoPrograms})
		if err != nil {
			return nil, err
		}
	}
	return RunPlan(plan, opt)
}

// RunPlan executes opt.Instances instances of a pre-built plan and
// aggregates the outcomes — the entry point for hosts that keep many
// compiled plans live at once (internal/serve's registry) and pay
// compilation once per spec, not once per run.
func RunPlan(plan *arun.Plan, opt Options) (*Result, error) {
	if opt.Instances <= 0 {
		opt.Instances = 1
	}
	if opt.IdleTimeout <= 0 {
		opt.IdleTimeout = 15 * time.Second
	}
	workers := opt.Workers
	if workers <= 0 {
		if opt.Mode == ModeNet {
			workers = min(opt.Instances, 32)
		} else {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	workers = min(workers, opt.Instances)

	var eng *netEngine
	if opt.Mode == ModeNet {
		var err error
		eng, err = newNetEngine(plan, opt)
		if err != nil {
			return nil, err
		}
		defer eng.close()
	}

	satCache := arun.NewSatCache()
	scratch := sync.Pool{New: func() any { return arun.NewScratch() }}
	outcomes := make([]*arun.Outcome, opt.Instances)
	errs := make([]error, workers)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for idx := w; idx < opt.Instances; idx += workers {
				sc := scratch.Get().(*arun.Scratch)
				out, err := runOne(plan, eng, sc, satCache, idx, opt)
				scratch.Put(sc)
				if err != nil {
					if errs[w] == nil {
						errs[w] = fmt.Errorf("instance %d: %w", idx, err)
					}
					return
				}
				outcomes[idx] = out
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := &Result{
		Instances:    opt.Instances,
		Workers:      workers,
		Elapsed:      elapsed,
		Fingerprints: map[string]int{},
	}
	for _, out := range outcomes {
		res.Fires += int64(out.Announcements)
		res.Decisions += int64(out.Decisions)
		res.Fingerprints[out.Fingerprint()]++
	}
	planCounter(plan.Spec().Name).Add(int64(opt.Instances))
	if eng != nil {
		res.Batches, res.BatchedFrames = eng.mesh.BatchStats()
		res.WALSyncs = eng.mesh.WALSyncs()
	}
	if opt.KeepOutcomes {
		res.Outcomes = outcomes
	}
	return res, nil
}

// runOne executes a single instance on its transport.
func runOne(plan *arun.Plan, eng *netEngine, sc *arun.Scratch, sat *arun.SatCache, idx int, opt Options) (*arun.Outcome, error) {
	started := time.Now()
	ropt := arun.RunnerOptions{
		IdleTimeout: opt.IdleTimeout,
		Scratch:     sc,
		SatCache:    sat,
		Tracer:      opt.Tracer,
		Instance:    uint32(idx),
	}
	var tr arun.Transport
	if eng != nil {
		inst := eng.newInstance(uint32(idx))
		defer eng.remove(inst)
		tr = inst.transport()
		ropt.Pipelined = true
		ropt.PollInterval = opt.PollInterval
	} else {
		// A private simulator per instance, on the same latency model as
		// the serial oracle — virtual time costs nothing, and keeping the
		// local≪remote ratio keeps within-attempt message races resolving
		// as they do on the reference runs.  Jitter widens the seeded
		// variation on top.
		lat := simnet.DefaultLatency()
		lat.Jitter += opt.Jitter
		tr = newSimXport(arun.NewSimTransportLat(lat, opt.Seed+int64(idx), opt.Fault))
	}
	defer tr.Close()
	r, err := plan.NewRunner(tr, ropt)
	if err != nil {
		return nil, err
	}
	out, err := r.Run()
	if err == nil {
		mInstances.Inc()
		mInstanceUS.Observe(time.Since(started).Microseconds())
	}
	return out, err
}

// SimTransport builds the per-instance simulator transport the
// engine's sim mode runs on: default latency model, direct driver
// injection.  Hosting layers (internal/serve) reuse it so a hosted
// instance at seed s reproduces the engine's fingerprint at seed s —
// the sim oracle and the served verdict are the same deterministic
// function of the seed.
func SimTransport(seed int64) arun.Transport {
	return newSimXport(arun.NewSimTransport(seed, nil))
}

// simXport wraps the simulator transport with direct driver
// injection: the driver only ever sends while its instance's
// simulator is idle (between attempts), so handing the attempt
// straight to the target site's handler — instead of queueing it,
// stepping the clock, and re-checking quiescence — is
// indistinguishable to the actors and saves the driver-bound hop on
// every attempt.
type simXport struct {
	*arun.SimTransport
	handlers map[simnet.SiteID]func(actor.Net, any)
}

func newSimXport(tr *arun.SimTransport) *simXport {
	return &simXport{SimTransport: tr, handlers: map[simnet.SiteID]func(actor.Net, any){}}
}

func (x *simXport) Register(site simnet.SiteID, h func(n actor.Net, payload any)) {
	x.handlers[site] = h
	x.SimTransport.Register(site, h)
}

func (x *simXport) Send(from, to simnet.SiteID, payload any) {
	if _, actorSite := x.handlers[from]; !actorSite {
		// Driver-originated: inject inline.
		if h := x.handlers[to]; h != nil {
			h(x.SimTransport, payload)
			return
		}
	}
	x.SimTransport.Send(from, to, payload)
}

// netEngine shares one TCP mesh among all instances: per-site
// demultiplexers route actor.Instanced envelopes to the owning
// instance's actors and account the instance's in-flight messages.
type netEngine struct {
	plan *arun.Plan
	mesh *netwire.Mesh

	mu        sync.RWMutex
	instances map[uint32]*instance
}

func newNetEngine(plan *arun.Plan, opt Options) (*netEngine, error) {
	mesh, err := netwire.NewMeshOpts(arun.DefaultDriver, plan.Sites(), netwire.MeshOptions{
		Fault:           opt.Fault,
		WALRoot:         opt.WALRoot,
		NoSync:          opt.WALNoSync,
		CommitInterval:  opt.WALCommitInterval,
		CheckpointEvery: opt.CheckpointEvery,
	})
	if err != nil {
		return nil, err
	}
	e := &netEngine{plan: plan, mesh: mesh, instances: map[uint32]*instance{}}
	for _, site := range plan.Sites() {
		e.mesh.Register(site, e.siteHandler(site))
	}
	return e, nil
}

func (e *netEngine) close() { e.mesh.Close() }

// siteHandler is the one handler a mesh node runs for a site: it
// unwraps the instance envelope and dispatches to that instance's
// actors.  Traffic for unknown instances is dropped — it cannot occur
// for live instances (an instance is only removed once its pending
// count reads zero, and every in-flight message is counted), so
// anything unmatched is foreign.
func (e *netEngine) siteHandler(site simnet.SiteID) func(actor.Net, any) {
	return func(_ actor.Net, p any) {
		env, ok := p.(actor.Instanced)
		if !ok {
			return
		}
		e.mu.RLock()
		inst := e.instances[env.Inst]
		var h func(actor.Net, any)
		var net actor.Net
		if inst != nil {
			h = inst.handlers[site]
			net = inst.nets[site]
		}
		e.mu.RUnlock()
		if inst == nil {
			return
		}
		if h != nil {
			h(net, env.Msg)
		}
		// The pending interval of a message closes only after its
		// handler returned, so any messages the handler sent are
		// already counted — the overlap that makes a single zero
		// observation of the tracker sound.
		inst.pend.Done()
	}
}

func (e *netEngine) newInstance(id uint32) *instance {
	inst := &instance{
		e:        e,
		id:       id,
		handlers: map[simnet.SiteID]func(actor.Net, any){},
		nets:     map[simnet.SiteID]actor.Net{},
	}
	e.mu.Lock()
	e.instances[id] = inst
	e.mu.Unlock()
	return inst
}

func (e *netEngine) remove(inst *instance) {
	e.mu.Lock()
	delete(e.instances, inst.id)
	e.mu.Unlock()
}

// instance is one workflow instance's state on the shared mesh.
type instance struct {
	e    *netEngine
	id   uint32
	pend quiesce.NotifyTracker

	// handlers/nets are written during NewRunner (before any message
	// flows) and read by site handlers under the engine lock.
	handlers map[simnet.SiteID]func(actor.Net, any)
	nets     map[simnet.SiteID]actor.Net
}

// send wraps a payload in the instance envelope and counts it as
// pending until the receiving handler returns.
func (inst *instance) send(from, to simnet.SiteID, payload any) {
	inst.pend.Add(1)
	inst.e.mesh.Send(from, to, actor.Instanced{Inst: inst.id, Msg: payload})
}

// siteNet is the actor.Net a site's actors see: instance-tagged
// sends, clocks from the site's own node (so occurrence indices keep
// their causal Lamport order).
type siteNet struct {
	inst *instance
	node *netwire.Node
}

func (s *siteNet) Send(from, to simnet.SiteID, payload any) { s.inst.send(from, to, payload) }
func (s *siteNet) Now() simnet.Time                         { return s.node.Now() }
func (s *siteNet) NextOccurrence() int64                    { return s.node.NextOccurrence() }
func (s *siteNet) Clock() int64                             { return s.node.Clock() }

// instXport is the arun.Transport the instance's runner drives:
// registration binds into the shared demultiplexers, and WaitIdle
// watches only this instance's pending count — per-instance
// completion instead of mesh-wide quiescence.
type instXport struct {
	inst *instance
}

func (inst *instance) transport() *instXport {
	return &instXport{inst: inst}
}

func (x *instXport) Register(site simnet.SiteID, h func(n actor.Net, payload any)) {
	e := x.inst.e
	e.mu.Lock()
	x.inst.handlers[site] = h
	x.inst.nets[site] = &siteNet{inst: x.inst, node: e.mesh.Node(site)}
	e.mu.Unlock()
}

func (x *instXport) Send(from, to simnet.SiteID, payload any) { x.inst.send(from, to, payload) }

func (x *instXport) Now() simnet.Time { return x.inst.e.mesh.Now() }

func (x *instXport) NextOccurrence() int64 { return x.inst.e.mesh.NextOccurrence() }

func (x *instXport) Clock() int64 { return x.inst.e.mesh.Clock() }

// WaitIdle blocks until this instance has no in-flight messages,
// sleeping until a completion pulse instead of polling.  A single zero
// observation suffices (see siteHandler).
func (x *instXport) WaitIdle(timeout time.Duration) bool {
	return x.inst.pend.WaitIdle(timeout)
}

// IdleNow and IdleWait expose the tracker's event-driven idle signal
// (arun.IdleNotifier): the runner's per-attempt wait selects on it
// alongside the decision gate, so a parked instance is detected the
// instant its last in-flight message completes — no poll slice, no
// repeated quiescence probes between attempts.
func (x *instXport) IdleNow() bool { return x.inst.pend.IdleNow() }

func (x *instXport) IdleWait() (<-chan struct{}, func()) { return x.inst.pend.IdleWait() }

// Close implements arun.Transport; the mesh outlives instances.
func (x *instXport) Close() {}
