package param

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/simnet"
)

// distRig wires type actors for Example 13's mutual exclusion over the
// simulated network: b1/e1 at one site, b2/e2 at another.
type distRig struct {
	net       *simnet.Network
	dir       *TypeDirectory
	actors    map[string]*TypeActor
	trace     []algebra.Symbol
	decisions []TokDecision
}

func newDistRig(t *testing.T, seed int64) *distRig {
	t.Helper()
	deps := []*algebra.Expr{
		algebra.MustParse("b2[?y] . b1[?x] + ~e1[?x] + ~b2[?y] + e1[?x] . b2[?y]"),
		algebra.MustParse("b1[?x] . b2[?y] + ~e2[?y] + ~b1[?x] + e2[?y] . b1[?x]"),
	}
	r := &distRig{
		net:    simnet.New(simnet.LatencyModel{Local: 1, Remote: 40, Jitter: 15}, seed),
		dir:    NewTypeDirectory(),
		actors: map[string]*TypeActor{},
	}
	hooks := &TypeHooks{
		OnFire:     func(g algebra.Symbol, _ int64) { r.trace = append(r.trace, g) },
		OnDecision: func(d TokDecision) { r.decisions = append(r.decisions, d) },
	}
	placement := map[string]simnet.SiteID{
		"b1": "site-t1", "e1": "site-t1",
		"b2": "site-t2", "e2": "site-t2",
	}
	for name, site := range placement {
		r.dir.Place(name, site)
	}
	for name, site := range placement {
		a, err := NewTypeActor(name, site, deps, r.dir, hooks)
		if err != nil {
			t.Fatal(err)
		}
		r.actors[name] = a
		r.net.AddSite(simnet.SiteID(site)+"/"+simnet.SiteID(name), nil) // reserve nothing; see below
	}
	// One actor per site is not enough here (two types share a site);
	// demultiplex by registering a tiny router per site.
	routers := map[simnet.SiteID][]*TypeActor{}
	for name, site := range placement {
		routers[site] = append(routers[site], r.actors[name])
	}
	for site, actors := range routers {
		actors := actors
		r.net.AddSite(site, simnet.HandlerFunc(func(n *simnet.Network, m simnet.Message) {
			for _, a := range actors {
				if routeToType(a, m) {
					a.Handle(n, m)
					return
				}
			}
			// Announcements fan out to every local actor.
			if _, ok := m.Payload.(TokAnnounce); ok {
				for _, a := range actors {
					a.Handle(n, m)
				}
			}
		}))
	}
	// Subscriptions: every type hears the types it watches.
	for name, a := range r.actors {
		for _, w := range a.WatchedTypes() {
			r.dir.Subscribe(w, placement[name])
		}
	}
	return r
}

// routeToType reports whether the message targets the actor's type.
func routeToType(a *TypeActor, m simnet.Message) bool {
	switch msg := m.Payload.(type) {
	case TokAttempt:
		return msg.Ground.Name == a.name
	case TFreeze:
		return msg.Type == a.name
	case TFreezeReply, TRelease:
		// Replies/releases go to the requester's round; route by the
		// actor with an active round or freeze entry.
		if reply, ok := m.Payload.(TFreezeReply); ok {
			return a.round != nil && a.round.pending[reply.Type]
		}
		rel := m.Payload.(TRelease)
		_, held := a.frozenBy[rel.Type+fmt.Sprint(rel.Round)]
		return held
	}
	return false
}

func (r *distRig) attempt(g string, delay simnet.Time) {
	sym, err := algebra.ParseSymbol(g)
	if err != nil {
		panic(err)
	}
	site, _ := r.dir.SiteOf(sym.Name)
	r.net.After(site, delay, TokAttempt{Ground: sym})
}

func (r *distRig) run() { r.net.Run(100000) }

// TestDistributedMutex drives two serial looping tasks: each exits
// before re-entering, and a parked entry is admitted by the exit
// announcement.  The realized history never overlaps.
func TestDistributedMutex(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := newDistRig(t, seed)
		steps := []string{
			"b1[i1]", "b2[j1]", // t2 parks while t1 inside
			"e1[i1]", // t2 admitted on announcement
			"e2[j1]",
			"b2[j2]", "b1[i2]", // roles reversed in iteration 2
			"e2[j2]",
			"e1[i2]",
		}
		for _, st := range steps {
			r.attempt(st, 1)
			r.run()
		}
		if len(r.trace) != len(steps) {
			t.Fatalf("seed %d: every token must eventually occur: %v", seed, r.trace)
		}
		assertNoOverlapDist(t, seed, r.trace)
	}
}

// TestDistributedMutexRace: simultaneous entries from both sites —
// the freeze agreement admits at most one before an exit.
func TestDistributedMutexRace(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := newDistRig(t, seed)
		r.attempt("b1[x]", 5)
		r.attempt("b2[y]", 5)
		r.run()
		entered := 0
		for _, s := range r.trace {
			if s.Name == "b1" || s.Name == "b2" {
				entered++
			}
		}
		if entered > 1 {
			t.Fatalf("seed %d: both tasks inside their critical sections: %v", seed, r.trace)
		}
		if entered == 0 {
			t.Fatalf("seed %d: nobody admitted (livelock): %v", seed, r.trace)
		}
	}
}

func assertNoOverlapDist(t *testing.T, seed int64, tr []algebra.Symbol) {
	t.Helper()
	open := ""
	for _, s := range tr {
		switch s.Name {
		case "b1", "b2":
			if open != "" {
				t.Fatalf("seed %d: overlapping critical sections: %v", seed, tr)
			}
			open = s.Name
		case "e1":
			if open != "b1" {
				t.Fatalf("seed %d: e1 without open b1: %v", seed, tr)
			}
			open = ""
		case "e2":
			if open != "b2" {
				t.Fatalf("seed %d: e2 without open b2: %v", seed, tr)
			}
			open = ""
		}
	}
}

// TestDistributedMutexEventualEntry: a parked entry is admitted once
// the blocking exit's announcement arrives.
func TestDistributedMutexEventualEntry(t *testing.T) {
	r := newDistRig(t, 9)
	r.attempt("b1[a]", 1)
	r.run()
	r.attempt("b2[b]", 1)
	r.run()
	if len(r.actors["b2"].Parked()) != 1 {
		t.Fatalf("b2[b] must park while t1 is inside (trace %v)", r.trace)
	}
	r.attempt("e1[a]", 1)
	r.run()
	found := false
	for _, s := range r.trace {
		if s.Key() == "b2[b]" {
			found = true
		}
	}
	if !found {
		t.Fatalf("b2[b] must be admitted after e1[a]: %v", r.trace)
	}
	assertNoOverlapDist(t, 9, r.trace)
}

func TestNewTypeActorValidation(t *testing.T) {
	if _, err := NewTypeActor("", "s", nil, NewTypeDirectory(), nil); err == nil {
		t.Fatal("empty name must fail")
	}
	if _, err := NewTypeActor("x", "s", nil, NewTypeDirectory(), nil); err == nil {
		t.Fatal("no dependencies must fail")
	}
}

// TestRunTypesMutex: the packaged driver runs Example 13 end to end
// over the network.
func TestRunTypesMutex(t *testing.T) {
	rep, err := RunTypes(TypesConfig{
		Deps: []string{
			"b2[?y] . b1[?x] + ~e1[?x] + ~b2[?y] + e1[?x] . b2[?y]",
			"b1[?x] . b2[?y] + ~e2[?y] + ~b1[?x] + e2[?y] . b1[?x]",
		},
		Placement: map[string]simnet.SiteID{
			"b1": "t1", "e1": "t1", "b2": "t2", "e2": "t2",
		},
		Script: []TimedToken{
			{Ground: "b1[i1]", At: 10},
			{Ground: "b2[j1]", At: 12}, // races; parks until e1[i1]
			{Ground: "e1[i1]", At: 5000},
			{Ground: "e2[j1]", At: 10000},
			{Ground: "b1[i2]", At: 15000},
			{Ground: "e1[i2]", At: 20000},
		},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Parked) != 0 {
		t.Fatalf("parked tokens remain: %v (trace %v)", rep.Parked, rep.Trace)
	}
	if len(rep.Trace) != 6 {
		t.Fatalf("all 6 tokens must occur: %v", rep.Trace)
	}
	syms := make([]algebra.Symbol, len(rep.Trace))
	copy(syms, rep.Trace)
	assertNoOverlapDist(t, 3, syms)
	if rep.Stats.Remote == 0 {
		t.Fatal("the run must actually be distributed")
	}
}

func TestRunTypesErrors(t *testing.T) {
	if _, err := RunTypes(TypesConfig{}); err == nil {
		t.Fatal("no deps must error")
	}
	if _, err := RunTypes(TypesConfig{Deps: []string{"e +"}}); err == nil {
		t.Fatal("bad dep must error")
	}
	if _, err := RunTypes(TypesConfig{
		Deps:   []string{"~a[?x] + b[?x]"},
		Script: []TimedToken{{Ground: "zzz[1]", At: 1}},
	}); err == nil {
		t.Fatal("unknown script type must error")
	}
}
