package param

import "repro/internal/obs"

// Incremental-evaluator metrics: evaluations requested versus the
// instance rechecks the deltas actually triggered — the ratio is the
// work the dependency index saves over from-scratch evaluation.
var (
	mEvals    = obs.C("param.evals")
	mRechecks = obs.C("param.instance_rechecks")
)
