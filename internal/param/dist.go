package param

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/simnet"
	"repro/internal/temporal"
)

// This file distributes §5's parametrized scheduling over the
// simulated network: one TypeActor per event type, holding the guard
// templates of every dependency that mentions the type and scheduling
// the type's ground tokens from local knowledge plus announcements.
//
// Because parametrized ¬ literals are universally quantified, deciding
// them needs the same agreement the ground scheduler uses — here at
// type granularity: the decider asks each relevant type actor to
// freeze admissions and report its occurrence history, decides, and
// releases.  Freezes are acquired with the same total-priority
// deferral as the ground actors (by type name), so waits cannot cycle.
// ◇/□ requirements resolve through announcements and the closeout
// driver (proactive triggering is the ground scheduler's department;
// see DESIGN.md).

// TokAttempt submits a ground token to its type's actor.
type TokAttempt struct {
	Ground algebra.Symbol
	// ReplyTo, when set, receives the TokDecision.
	ReplyTo simnet.SiteID
}

// TokAnnounce broadcasts a ground occurrence.
type TokAnnounce struct {
	Ground algebra.Symbol
	At     int64
}

// TokDecision reports an accept/reject for a token.
type TokDecision struct {
	Ground   algebra.Symbol
	Accepted bool
}

// TFreeze asks a type actor to freeze admissions and report its
// occurrence history.
type TFreeze struct {
	Type      string // base type name to freeze
	Requester string // requesting type name (priority)
	ReplyTo   simnet.SiteID
	Round     int
}

// TFreezeReply carries the frozen type's occurrence history.
type TFreezeReply struct {
	Type        string
	Round       int
	Occurrences []TokAnnounce
}

// TRelease ends a freeze.
type TRelease struct {
	Type  string
	Round int
}

// TypeActor schedules the ground tokens of one event type.
type TypeActor struct {
	// name is the base event-type name (e.g. "b1").
	name string
	site simnet.SiteID
	// guards are the instantiable guard templates for tokens of this
	// type: one per (dependency, unifying pattern), for each polarity.
	guards map[string][]typeGuard // polarity marker "+"/"-" → templates
	hist   History
	parked []parkedToken
	// frozenBy holds admission freezes granted to remote deciders.
	frozenBy map[string]bool
	// deciding tracks an in-flight freeze round for a parked token.
	round *tokenRound
	// deferred freeze requests awaiting our own round.
	deferred []TFreeze
	dir      *TypeDirectory
	hooks    *TypeHooks
	roundSeq int
}

type parkedToken struct {
	ground  algebra.Symbol
	replyTo simnet.SiteID
}

// typeGuard pairs a guard template with the event-type pattern it was
// synthesized for, so a ground token can bind the pattern's variables
// into the template (shared-variable dependencies, §5.1 style).
type typeGuard struct {
	pattern algebra.Symbol
	tmpl    *ParamGuard
}

type tokenRound struct {
	id      int
	token   parkedToken
	pending map[string]bool
}

// TypeDirectory maps type names to sites and subscription lists.
type TypeDirectory struct {
	sites map[string]simnet.SiteID
	subs  map[string][]simnet.SiteID
}

// NewTypeDirectory creates an empty directory.
func NewTypeDirectory() *TypeDirectory {
	return &TypeDirectory{sites: map[string]simnet.SiteID{}, subs: map[string][]simnet.SiteID{}}
}

// Place assigns a type to a site.
func (d *TypeDirectory) Place(name string, site simnet.SiteID) { d.sites[name] = site }

// SiteOf returns a type's site.
func (d *TypeDirectory) SiteOf(name string) (simnet.SiteID, bool) {
	s, ok := d.sites[name]
	return s, ok
}

// Subscribe adds a site to a type's announcement list.
func (d *TypeDirectory) Subscribe(name string, site simnet.SiteID) {
	for _, s := range d.subs[name] {
		if s == site {
			return
		}
	}
	d.subs[name] = append(d.subs[name], site)
	sort.Slice(d.subs[name], func(i, j int) bool { return d.subs[name][i] < d.subs[name][j] })
}

// TypeHooks observe occurrences and decisions out-of-band.
type TypeHooks struct {
	OnFire     func(ground algebra.Symbol, at int64)
	OnDecision func(d TokDecision)
}

func (h *TypeHooks) fire(g algebra.Symbol, at int64) {
	if h != nil && h.OnFire != nil {
		h.OnFire(g, at)
	}
}

func (h *TypeHooks) decision(d TokDecision) {
	if h != nil && h.OnDecision != nil {
		h.OnDecision(d)
	}
}

// NewTypeActor builds the actor for one event type from the
// parametrized dependencies (those not mentioning the type contribute
// nothing).  Guard templates are synthesized once — precompilation.
func NewTypeActor(name string, site simnet.SiteID, deps []*algebra.Expr,
	dir *TypeDirectory, hooks *TypeHooks) (*TypeActor, error) {
	if name == "" || site == "" {
		return nil, fmt.Errorf("param: type actor needs a name and site")
	}
	m, err := managerFromDeps(deps)
	if err != nil {
		return nil, err
	}
	a := &TypeActor{
		name:     name,
		site:     site,
		guards:   map[string][]typeGuard{},
		frozenBy: map[string]bool{},
		dir:      dir,
		hooks:    hooks,
	}
	for i, d := range deps {
		for _, pat := range gammaTypes(d) {
			if pat.Name != name {
				continue
			}
			marker := "+"
			if pat.Bar {
				marker = "-"
			}
			a.guards[marker] = append(a.guards[marker],
				typeGuard{pattern: pat, tmpl: m.guardFor(i, pat).pg})
		}
	}
	return a, nil
}

func managerFromDeps(deps []*algebra.Expr) (*Manager, error) {
	var srcs []string
	for _, d := range deps {
		srcs = append(srcs, d.Key())
	}
	return NewManager(srcs...)
}

// WatchedTypes returns the other event-type names this actor's guards
// mention: the types whose occurrences it must hear about, and whose
// ¬ literals need freezes.
func (a *TypeActor) WatchedTypes() []string {
	seen := map[string]bool{}
	for _, gs := range a.guards {
		for _, g := range gs {
			for _, s := range g.tmpl.Template.Symbols() {
				if s.Name != a.name {
					seen[s.Name] = true
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// negTypes returns the type names appearing under ¬ literals in the
// actor's guards: those require the freeze agreement.
func (a *TypeActor) negTypes(polarity string) []string {
	seen := map[string]bool{}
	for _, g := range a.guards[polarity] {
		for _, p := range g.tmpl.Template.Products() {
			for _, l := range p.Lits() {
				if l.Kind() == temporal.LitNotYet && l.Sym().Name != a.name {
					seen[l.Sym().Name] = true
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Handle implements simnet.Handler.
func (a *TypeActor) Handle(n *simnet.Network, m simnet.Message) {
	switch msg := m.Payload.(type) {
	case TokAttempt:
		a.onAttempt(n, msg)
	case TokAnnounce:
		a.onAnnounce(n, msg)
	case TFreeze:
		a.onFreeze(n, msg)
	case TFreezeReply:
		a.onFreezeReply(n, msg)
	case TRelease:
		delete(a.frozenBy, msg.Type+fmt.Sprint(msg.Round))
		a.admitParked(n)
	default:
		panic(fmt.Sprintf("param: type actor %s: unexpected payload %T", a.name, m.Payload))
	}
}

func (a *TypeActor) polarityOf(g algebra.Symbol) string {
	if g.Bar {
		return "-"
	}
	return "+"
}

func (a *TypeActor) onAttempt(n *simnet.Network, m TokAttempt) {
	g := m.Ground
	if g.Name != a.name || !g.Ground() {
		panic(fmt.Sprintf("param: type actor %s: misrouted token %s", a.name, g))
	}
	if a.hist.Occurred(g) {
		a.decide(n, g, m.ReplyTo, true)
		return
	}
	if a.hist.Occurred(g.Complement()) {
		a.decide(n, g, m.ReplyTo, false)
		return
	}
	a.evaluate(n, parkedToken{ground: g, replyTo: m.ReplyTo}, true)
}

// evaluate decides a token; fresh tokens may start a freeze round for
// their ¬ literals, parked retries only re-check.
func (a *TypeActor) evaluate(n *simnet.Network, tok parkedToken, fresh bool) {
	if len(a.frozenBy) > 0 {
		// A remote decider holds us frozen: queue the admission.
		a.park(tok)
		return
	}
	switch a.evalToken(tok.ground) {
	case temporal.True:
		negs := a.negTypes(a.polarityOf(tok.ground))
		if len(negs) > 0 {
			// Secure agreement before relying on universal ¬s.
			switch {
			case a.round == nil:
				a.startRound(n, tok, negs)
			case a.round.token.ground.Equal(tok.ground):
				// round already in flight for this token
			default:
				a.park(tok)
			}
			return
		}
		a.fire(n, tok)
	case temporal.False:
		a.decide(n, tok.ground, tok.replyTo, false)
	default:
		a.park(tok)
	}
	_ = fresh
}

func (a *TypeActor) evalToken(g algebra.Symbol) temporal.Tri {
	result := temporal.True
	for _, tg := range a.guards[a.polarityOf(g)] {
		b, ok := Unify(tg.pattern, g)
		if !ok {
			continue // token does not instantiate this pattern
		}
		pg := tg.tmpl
		if len(b) > 0 {
			pg = NewParamGuard(SubstFormula(tg.tmpl.Template, b))
		}
		switch pg.Eval(&a.hist) {
		case temporal.False:
			return temporal.False
		case temporal.Unknown:
			result = temporal.Unknown
		}
	}
	return result
}

func (a *TypeActor) park(tok parkedToken) {
	for _, p := range a.parked {
		if p.ground.Equal(tok.ground) {
			return
		}
	}
	a.parked = append(a.parked, tok)
}

func (a *TypeActor) startRound(n *simnet.Network, tok parkedToken, negs []string) {
	a.roundSeq++
	a.round = &tokenRound{id: a.roundSeq, token: tok, pending: map[string]bool{}}
	for _, t := range negs {
		site, ok := a.dir.SiteOf(t)
		if !ok {
			panic(fmt.Sprintf("param: no site for type %s", t))
		}
		a.round.pending[t] = true
		n.Send(a.site, site, TFreeze{Type: t, Requester: a.name, ReplyTo: a.site, Round: a.round.id})
	}
}

func (a *TypeActor) onFreeze(n *simnet.Network, m TFreeze) {
	// Priority deferral: while our own round is pending and our name
	// is smaller, postpone.
	if a.round != nil && len(a.round.pending) > 0 && a.name < m.Requester {
		a.deferred = append(a.deferred, m)
		return
	}
	a.frozenBy[m.Requester+fmt.Sprint(m.Round)] = true
	var occ []TokAnnounce
	for _, g := range a.hist.grounds {
		t, _ := a.hist.know.Time(g)
		occ = append(occ, TokAnnounce{Ground: g, At: t})
	}
	n.Send(a.site, m.ReplyTo, TFreezeReply{Type: a.name, Round: m.Round, Occurrences: occ})
}

func (a *TypeActor) onFreezeReply(n *simnet.Network, m TFreezeReply) {
	if a.round == nil || a.round.id != m.Round {
		// Stale: release immediately.
		if site, ok := a.dir.SiteOf(m.Type); ok {
			n.Send(a.site, site, TRelease{Type: a.name, Round: m.Round})
		}
		return
	}
	for _, occ := range m.Occurrences {
		if !a.hist.Occurred(occ.Ground) {
			a.hist.Observe(occ.Ground, occ.At)
		}
	}
	delete(a.round.pending, m.Type)
	if len(a.round.pending) > 0 {
		return
	}
	// All freezes in: final decision with synchronized knowledge.
	tok := a.round.token
	switch a.evalToken(tok.ground) {
	case temporal.True:
		a.fire(n, tok)
	case temporal.False:
		a.endRound(n)
		a.decide(n, tok.ground, tok.replyTo, false)
	default:
		a.endRound(n)
		a.park(tok)
	}
}

func (a *TypeActor) endRound(n *simnet.Network) {
	if a.round == nil {
		return
	}
	for _, t := range a.negTypes(a.polarityOf(a.round.token.ground)) {
		if site, ok := a.dir.SiteOf(t); ok {
			n.Send(a.site, site, TRelease{Type: a.name, Round: a.round.id})
		}
	}
	a.round = nil
	pending := a.deferred
	a.deferred = nil
	for _, m := range pending {
		a.onFreeze(n, m)
	}
}

func (a *TypeActor) fire(n *simnet.Network, tok parkedToken) {
	at := n.NextOccurrence()
	a.hist.Observe(tok.ground, at)
	a.hooks.fire(tok.ground, at)
	for _, site := range a.dir.subs[a.name] {
		n.Send(a.site, site, TokAnnounce{Ground: tok.ground, At: at})
	}
	a.endRound(n)
	a.decide(n, tok.ground, tok.replyTo, true)
	a.retryParked(n)
}

func (a *TypeActor) onAnnounce(n *simnet.Network, m TokAnnounce) {
	if a.hist.Occurred(m.Ground) {
		return
	}
	a.hist.Observe(m.Ground, m.At)
	a.retryParked(n)
}

func (a *TypeActor) retryParked(n *simnet.Network) {
	parked := a.parked
	a.parked = nil
	for _, tok := range parked {
		if a.hist.Occurred(tok.ground.Complement()) {
			a.decide(n, tok.ground, tok.replyTo, false)
			continue
		}
		a.evaluate(n, tok, false)
	}
}

// admitParked re-evaluates queued admissions once freezes lift.
func (a *TypeActor) admitParked(n *simnet.Network) {
	if len(a.frozenBy) == 0 {
		a.retryParked(n)
	}
}

func (a *TypeActor) decide(n *simnet.Network, g algebra.Symbol, replyTo simnet.SiteID, accepted bool) {
	d := TokDecision{Ground: g, Accepted: accepted}
	a.hooks.decision(d)
	if replyTo != "" {
		n.Send(a.site, replyTo, d)
	}
}

// Parked returns the currently parked tokens (diagnostics).
func (a *TypeActor) Parked() []algebra.Symbol {
	out := make([]algebra.Symbol, 0, len(a.parked))
	for _, p := range a.parked {
		out = append(out, p.ground)
	}
	return out
}
