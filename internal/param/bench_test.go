package param

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
)

// example13Manager builds the P4/P9 workload manager.
func example13Manager(tb testing.TB, scratch bool) *Manager {
	tb.Helper()
	m, err := NewManager(
		"b2[?y] . b1[?x] + ~e1[?x] + ~b2[?y] + e1[?x] . b2[?y]",
		"b1[?x] . b2[?y] + ~e2[?y] + ~b1[?x] + e2[?y] . b1[?x]",
	)
	if err != nil {
		tb.Fatal(err)
	}
	if scratch {
		m.DisableIncremental()
	}
	return m
}

func driveExample13(tb testing.TB, m *Manager, iters int) {
	tb.Helper()
	var c Counter
	for i := 0; i < iters; i++ {
		for _, base := range []string{"b1", "e1", "b2", "e2"} {
			if _, err := m.Attempt(c.Next(algebra.Sym(base))); err != nil {
				tb.Fatal(err)
			}
		}
	}
}

// BenchmarkParamEval sweeps the Example 13 manager over loop
// iterations on both evaluation paths; each b.N op is one full run, so
// ns/op at a given iteration count exposes superlinear growth.
func BenchmarkParamEval(b *testing.B) {
	for _, iters := range []int{5, 20, 80} {
		for _, mode := range []struct {
			name    string
			scratch bool
		}{{"incremental", false}, {"scratch", true}} {
			b.Run(fmt.Sprintf("%s/iters=%d", mode.name, iters), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m := example13Manager(b, mode.scratch)
					driveExample13(b, m, iters)
				}
			})
		}
	}
}
