package param

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/simnet"
)

// TypesConfig describes a distributed parametrized run: §5's token
// scheduling executed by per-type actors over the simulated network.
type TypesConfig struct {
	// Deps are the parametrized dependencies (text syntax).
	Deps []string
	// Placement maps event-type names to sites; types without an entry
	// default to "s0".
	Placement map[string]simnet.SiteID
	// Script is the token schedule: each entry is attempted at its
	// type's site at the given absolute simulation time.  Parked
	// tokens are decided whenever their guards allow, so later entries
	// should leave room for the admissions they depend on.
	Script []TimedToken
	// Latency configures the network (zero value: simnet default).
	Latency simnet.LatencyModel
	// Seed makes the run reproducible.
	Seed int64
}

// TimedToken is one scripted token attempt.
type TimedToken struct {
	Ground string
	// At is the absolute injection time.
	At simnet.Time
}

// TypesReport summarizes a distributed parametrized run.
type TypesReport struct {
	// Trace is the realized token occurrence order.
	Trace algebra.Trace
	// Decisions are the accept/reject outcomes, in decision order.
	Decisions []TokDecision
	// Parked lists tokens still undecided at the end.
	Parked []algebra.Symbol
	// Stats are the network statistics.
	Stats simnet.Stats
}

// deferredAttempt carries a scheduled token injection from the driver
// site to the token's type site.
type deferredAttempt struct {
	to  simnet.SiteID
	msg TokAttempt
}

// RunTypes executes a distributed parametrized run.
func RunTypes(cfg TypesConfig) (*TypesReport, error) {
	if len(cfg.Deps) == 0 {
		return nil, fmt.Errorf("param: RunTypes needs dependencies")
	}
	lat := cfg.Latency
	if lat == (simnet.LatencyModel{}) {
		lat = simnet.DefaultLatency()
	}
	net := simnet.New(lat, cfg.Seed)
	dir := NewTypeDirectory()

	deps := make([]*algebra.Expr, len(cfg.Deps))
	typeNames := map[string]bool{}
	for i, src := range cfg.Deps {
		d, err := algebra.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("param: dependency %d: %w", i+1, err)
		}
		deps[i] = d
		for _, s := range d.Gamma().Bases() {
			typeNames[s.Name] = true
		}
	}
	names := make([]string, 0, len(typeNames))
	for n := range typeNames {
		names = append(names, n)
	}
	sort.Strings(names)

	siteOf := func(name string) simnet.SiteID {
		if cfg.Placement != nil {
			if s, ok := cfg.Placement[name]; ok {
				return s
			}
		}
		return "s0"
	}

	report := &TypesReport{}
	hooks := &TypeHooks{
		OnFire: func(g algebra.Symbol, _ int64) { report.Trace = append(report.Trace, g) },
		OnDecision: func(d TokDecision) {
			report.Decisions = append(report.Decisions, d)
		},
	}

	actors := map[string]*TypeActor{}
	bySite := map[simnet.SiteID][]*TypeActor{}
	for _, name := range names {
		dir.Place(name, siteOf(name))
	}
	for _, name := range names {
		a, err := NewTypeActor(name, siteOf(name), deps, dir, hooks)
		if err != nil {
			return nil, err
		}
		actors[name] = a
		bySite[siteOf(name)] = append(bySite[siteOf(name)], a)
	}
	// Subscribe every actor's site to the types it watches.
	for _, name := range names {
		for _, w := range actors[name].WatchedTypes() {
			dir.Subscribe(w, siteOf(name))
		}
	}
	for site, group := range bySite {
		group := group
		net.AddSite(site, simnet.HandlerFunc(func(n *simnet.Network, m simnet.Message) {
			routeTypes(n, m, group)
		}))
	}

	const driverSite simnet.SiteID = "driver"
	net.AddSite(driverSite, simnet.HandlerFunc(func(n *simnet.Network, m simnet.Message) {
		if da, ok := m.Payload.(deferredAttempt); ok {
			n.Send(driverSite, da.to, da.msg)
		}
		// TokDecision arrivals are recorded via hooks; nothing to do.
	}))
	for _, tt := range cfg.Script {
		sym, err := algebra.ParseSymbol(tt.Ground)
		if err != nil {
			return nil, fmt.Errorf("param: script token %q: %w", tt.Ground, err)
		}
		site, ok := dir.SiteOf(sym.Base().Name)
		if !ok {
			return nil, fmt.Errorf("param: script token %q: type not in any dependency", tt.Ground)
		}
		net.After(driverSite, tt.At, deferredAttempt{to: site, msg: TokAttempt{Ground: sym, ReplyTo: driverSite}})
	}
	net.Run(1_000_000)

	for _, name := range names {
		report.Parked = append(report.Parked, actors[name].Parked()...)
	}
	report.Stats = net.Stats()
	return report, nil
}

// routeTypes demultiplexes a site's messages among its type actors.
func routeTypes(n *simnet.Network, m simnet.Message, group []*TypeActor) {
	switch msg := m.Payload.(type) {
	case TokAttempt:
		for _, a := range group {
			if msg.Ground.Name == a.name {
				a.Handle(n, m)
				return
			}
		}
		panic(fmt.Sprintf("param: no actor for token %s at %s", msg.Ground, m.To))
	case TokAnnounce:
		for _, a := range group {
			a.Handle(n, m)
		}
	case TFreeze:
		for _, a := range group {
			if msg.Type == a.name {
				a.Handle(n, m)
				return
			}
		}
	case TFreezeReply:
		for _, a := range group {
			if a.round != nil && a.round.pending[msg.Type] {
				a.Handle(n, m)
				return
			}
		}
	case TRelease:
		key := msg.Type + fmt.Sprint(msg.Round)
		for _, a := range group {
			if a.frozenBy[key] {
				a.Handle(n, m)
				return
			}
		}
	default:
		panic(fmt.Sprintf("param: unexpected payload %T at %s", m.Payload, m.To))
	}
}
