package param

import (
	"repro/internal/algebra"
	"repro/internal/temporal"
)

// This file implements the delta-driven parametrized evaluation fast
// path.  ParamGuard.Eval re-enumerates every candidate binding and
// re-evaluates every instance on each call; the structures here make
// the same verdicts incremental, in three layers:
//
//  1. a per-instance "partial" verdict: the instance template
//     evaluated with every remaining quantified variable treated as
//     unknown.  A product that is true through fully-ground literals
//     alone is true in every grounding, so a partial ⊤ (or 0) decides
//     the whole universal conjunction without enumerating a single
//     binding — and permanently, because ground verdicts under
//     Observe-only histories are never retracted;
//
//  2. a per-template candidate index shared by every token of an
//     event type (templateState): observations are unified against
//     the template's patterns once per observation instead of once
//     per attempt, and a candidate value whose one-variable partial
//     instance is discharged (⊤ for every grounding of the other
//     variables, by the same ground-products argument) is removed
//     from the index wholesale — Example 14's shrinking.  New tokens
//     then quantify only over the values still in play, so
//     steady-state cost tracks the live population, not the history;
//
//  3. per-binding instance verdict caching with dependency-indexed
//     rechecks (Evaluator): an undecided instance is re-evaluated
//     only when a new observation (or its complement) is one of the
//     instance's own ground symbols — the only way its verdict can
//     move.  Discharged instances are never revisited.
//
// Layer 2 is exact only when every template symbol mentions at most
// one distinct variable — then a token's instance-level candidate
// sets coincide with the template-level ones (substituting the
// token's variables leaves single-variable patterns either fully
// ground or untouched).  Templates with multi-variable symbols fall
// back to per-token candidate discovery (layers 1 and 3 still apply).
// Layers 1 and 3 are exact unconditionally.
//
// Everything here is single-threaded, owned by the Manager, and
// assumes the History grows only via Observe.

// evalFormulaPartial evaluates a formula treating every literal that
// still contains a variable as unknown.  True and False verdicts
// therefore hold for every grounding of the free variables — and
// permanently, since they rest on fully-ground literals only.
func evalFormulaPartial(h *History, f temporal.Formula) temporal.Tri {
	anyUnknown := false
	for _, p := range f.Products() {
		v := evalProductPartial(h, p)
		if v == temporal.True {
			return temporal.True
		}
		if v == temporal.Unknown {
			anyUnknown = true
		}
	}
	if f.IsTrue() {
		return temporal.True
	}
	if anyUnknown {
		return temporal.Unknown
	}
	return temporal.False
}

func evalProductPartial(h *History, p temporal.Product) temporal.Tri {
	anyUnknown := false
	for _, l := range p.Lits() {
		if !litGround(l) {
			anyUnknown = true
			continue
		}
		switch h.know.DecideLit(l) {
		case temporal.False:
			return temporal.False
		case temporal.Unknown:
			anyUnknown = true
		}
	}
	if anyUnknown {
		return temporal.Unknown
	}
	return temporal.True
}

// groundSymKeys returns the keys of the formula's ground symbols —
// the dependency set of its partial verdict and of any of its
// instances' verdicts.
func groundSymKeys(f temporal.Formula) map[string]bool {
	out := map[string]bool{}
	for _, s := range f.Symbols() {
		if s.Ground() {
			out[s.Key()] = true
		}
	}
	return out
}

type partialKey struct{ v, val string }

// templateState is the candidate index one guard template shares
// across every token of its event type.
type templateState struct {
	pg    *ParamGuard
	h     *History
	exact bool // every template symbol mentions ≤ 1 distinct variable
	seen  int  // prefix of h's observation log already assimilated

	patsByVar map[string][]algebra.Symbol
	// live and discharged partition the observed candidate values per
	// variable: discharged values have a partial instance proven ⊤ for
	// every grounding of the remaining variables and are skipped by
	// every present and future token.
	live       map[string]map[string]bool
	discharged map[string]map[string]bool
	// partial holds the still-undecided one-variable partial
	// instances, indexed by their ground symbols for delta rechecks.
	partial     map[partialKey]temporal.Formula
	partialDeps map[string]map[partialKey]bool
}

func newTemplateState(pg *ParamGuard, h *History) *templateState {
	ts := &templateState{
		pg:          pg,
		h:           h,
		exact:       true,
		patsByVar:   map[string][]algebra.Symbol{},
		live:        map[string]map[string]bool{},
		discharged:  map[string]map[string]bool{},
		partial:     map[partialKey]temporal.Formula{},
		partialDeps: map[string]map[partialKey]bool{},
	}
	for _, pat := range pg.Template.Symbols() {
		distinct := map[string]bool{}
		for _, t := range pat.Params {
			if t.IsVar {
				distinct[t.Value] = true
			}
		}
		if len(distinct) > 1 {
			ts.exact = false
		}
		for v := range distinct {
			ts.patsByVar[v] = append(ts.patsByVar[v], pat)
		}
	}
	for _, v := range pg.vars {
		ts.live[v] = map[string]bool{}
		ts.discharged[v] = map[string]bool{}
	}
	return ts
}

// sync assimilates the observations appended since the last call:
// rechecks the undecided partial instances the observation touches
// and folds new candidate values into the index.  No-op for inexact
// templates, whose tokens discover candidates themselves.
func (ts *templateState) sync() {
	if !ts.exact {
		return
	}
	for ts.seen < len(ts.h.grounds) {
		g := ts.h.grounds[ts.seen]
		ts.seen++
		ts.recheckPartials(g.Key())
		ts.recheckPartials(g.Complement().Key())
		for v, pats := range ts.patsByVar {
			for _, pat := range pats {
				for _, cand := range [2]algebra.Symbol{g, g.Complement()} {
					b, ok := Unify(pat, cand)
					if !ok {
						continue
					}
					val, bound := b[v]
					if !bound || ts.live[v][val] || ts.discharged[v][val] {
						continue
					}
					ts.addValue(v, val)
				}
			}
		}
	}
}

func (ts *templateState) addValue(v, val string) {
	p := SubstFormula(ts.pg.Template, Binding{v: val})
	switch evalFormulaPartial(ts.h, p) {
	case temporal.True:
		ts.discharged[v][val] = true
	case temporal.False:
		// Permanently 0 for every grounding: stay live so tokens
		// materialize (and fail on) the instance, exactly as the
		// from-scratch evaluation would.
		ts.live[v][val] = true
	default:
		ts.live[v][val] = true
		pk := partialKey{v: v, val: val}
		ts.partial[pk] = p
		for sym := range groundSymKeys(p) {
			deps := ts.partialDeps[sym]
			if deps == nil {
				deps = map[partialKey]bool{}
				ts.partialDeps[sym] = deps
			}
			deps[pk] = true
		}
	}
}

func (ts *templateState) recheckPartials(symKey string) {
	for pk := range ts.partialDeps[symKey] {
		p, undecided := ts.partial[pk]
		if !undecided {
			delete(ts.partialDeps[symKey], pk)
			continue
		}
		switch evalFormulaPartial(ts.h, p) {
		case temporal.True:
			ts.discharged[pk.v][pk.val] = true
			delete(ts.live[pk.v], pk.val)
			delete(ts.partial, pk)
		case temporal.False:
			delete(ts.partial, pk) // permanent; no more rechecks needed
		}
	}
}

// Evaluator incrementally evaluates one ParamGuard instance (a token's
// guard, universally quantified over its remaining variables) against
// a growing History.  See the file comment for the design; the
// verdicts agree with ParamGuard.Eval at every history prefix
// (property-tested).
type Evaluator struct {
	pg *ParamGuard
	h  *History
	ts *templateState // shared candidate index; may be nil (standalone)

	started    bool
	seen       int
	partialTri temporal.Tri    // cached partial verdict of the instance template
	instDeps   map[string]bool // ground symbols of the instance template

	myCands  map[string]map[string]bool
	bindings []Binding
	unknown  map[string]temporal.Formula // binding key → undecided instance
	depIndex map[string]map[string]bool  // ground symbol key → undecided binding keys
	failed   bool
}

// NewEvaluator builds a standalone incremental evaluator for a guard
// over a history (no shared template index).  The history may already
// hold observations; they are assimilated on the first Eval.
func NewEvaluator(pg *ParamGuard, h *History) *Evaluator {
	return newEvaluatorWith(pg, h, nil)
}

func newEvaluatorWith(pg *ParamGuard, h *History, ts *templateState) *Evaluator {
	return &Evaluator{
		pg:       pg,
		h:        h,
		ts:       ts,
		myCands:  map[string]map[string]bool{},
		unknown:  map[string]temporal.Formula{},
		depIndex: map[string]map[string]bool{},
	}
}

// exactShared reports whether the shared template index can stand in
// for this instance's own candidate discovery.
func (ev *Evaluator) exactShared() bool { return ev.ts != nil && ev.ts.exact }

// Eval returns the universal verdict at the history's current state,
// assimilating only the observations since the previous call.
func (ev *Evaluator) Eval() temporal.Tri {
	mEvals.Inc()
	if ev.ts != nil {
		ev.ts.sync()
	}
	if ev.failed {
		return temporal.False
	}
	if ev.started && ev.partialTri == temporal.True {
		return temporal.True
	}
	if !ev.started {
		ev.start()
	} else {
		for ev.seen < len(ev.h.grounds) {
			g := ev.h.grounds[ev.seen]
			ev.seen++
			ev.recheckPartial(g)
			if ev.partialTri == temporal.True {
				ev.discharge()
				return temporal.True
			}
			ev.recheck(g.Key())
			ev.recheck(g.Complement().Key())
			if ev.failed {
				return temporal.False
			}
			if !ev.exactShared() {
				ev.discover(g)
			}
		}
		if ev.exactShared() {
			ev.diffLive()
		}
	}
	switch {
	case ev.failed:
		return temporal.False
	case ev.partialTri == temporal.True:
		return temporal.True
	case len(ev.unknown) > 0:
		return temporal.Unknown
	}
	return temporal.True
}

// start performs the first evaluation: the partial fast path, then —
// only if it is undecided — materializing the binding population from
// the shared index (or by replaying the observation log when the
// template is inexact).
func (ev *Evaluator) start() {
	ev.started = true
	ev.instDeps = groundSymKeys(ev.pg.Template)
	ev.partialTri = evalFormulaPartial(ev.h, ev.pg.Template)
	switch ev.partialTri {
	case temporal.True:
		ev.seen = len(ev.h.grounds)
		ev.discharge()
		return
	case temporal.False:
		ev.failed = true
		return
	}
	for _, v := range ev.pg.vars {
		ev.myCands[v] = map[string]bool{}
	}
	empty := Binding{}
	ev.bindings = append(ev.bindings, empty)
	ev.assess(empty)
	if ev.exactShared() {
		ev.seen = len(ev.h.grounds)
		ev.diffLive()
		return
	}
	// Inexact template: replay the log for candidate discovery only —
	// instances assessed here already reflect the full history, so no
	// rechecks are needed during the replay.
	for ; ev.seen < len(ev.h.grounds); ev.seen++ {
		ev.discover(ev.h.grounds[ev.seen])
	}
}

// discharge drops the binding population once the partial verdict is
// permanently true.
func (ev *Evaluator) discharge() {
	ev.myCands, ev.bindings, ev.unknown, ev.depIndex = nil, nil, nil, nil
}

// recheckPartial re-evaluates the cached partial verdict when the
// observation touches the instance template's ground symbols.
func (ev *Evaluator) recheckPartial(g algebra.Symbol) {
	if ev.partialTri != temporal.Unknown {
		return
	}
	if !ev.instDeps[g.Key()] && !ev.instDeps[g.Complement().Key()] {
		return
	}
	ev.partialTri = evalFormulaPartial(ev.h, ev.pg.Template)
	if ev.partialTri == temporal.False {
		ev.failed = true
	}
}

// diffLive materializes bindings for shared-index candidate values
// this evaluator has not seen yet.
func (ev *Evaluator) diffLive() {
	for _, v := range ev.pg.vars {
		for val := range ev.ts.live[v] {
			if ev.myCands[v][val] {
				continue
			}
			ev.addCandidate(v, val)
		}
	}
}

// discover unifies one new observation against the instance's own
// patterns — the inexact-template fallback for candidate discovery.
func (ev *Evaluator) discover(g algebra.Symbol) {
	for _, v := range ev.pg.vars {
		for _, pat := range ev.pg.Template.Symbols() {
			hasVar := false
			for _, t := range pat.Params {
				if t.IsVar && t.Value == v {
					hasVar = true
				}
			}
			if !hasVar {
				continue
			}
			for _, cand := range [2]algebra.Symbol{g, g.Complement()} {
				b, ok := Unify(pat, cand)
				if !ok {
					continue
				}
				val, bound := b[v]
				if !bound || ev.myCands[v][val] {
					continue
				}
				ev.addCandidate(v, val)
			}
		}
	}
}

// recheck re-evaluates the undecided instances depending on a symbol,
// pruning index entries for instances decided meanwhile.
func (ev *Evaluator) recheck(symKey string) {
	keys := ev.depIndex[symKey]
	for key := range keys {
		inst, live := ev.unknown[key]
		if !live {
			delete(keys, key)
			continue
		}
		mRechecks.Inc()
		switch evalFormulaFree(ev.h, inst) {
		case temporal.True:
			delete(ev.unknown, key) // discharged: never revisited
			delete(keys, key)
		case temporal.False:
			ev.failed = true
		}
	}
}

// addCandidate registers a newly relevant value for a variable and
// materializes the bindings it induces: every existing binding in
// which the variable is still fresh, extended with the value — the
// incremental form of the candidate cross product.
func (ev *Evaluator) addCandidate(v, val string) {
	ev.myCands[v][val] = true
	n := len(ev.bindings)
	for i := 0; i < n; i++ {
		b := ev.bindings[i]
		if _, bound := b[v]; bound {
			continue
		}
		nb := b.Clone()
		nb[v] = val
		ev.bindings = append(ev.bindings, nb)
		ev.assess(nb)
	}
}

// assess evaluates a newly materialized binding's instance and records
// the outcome: discharged instances are dropped, a failed instance
// fails the guard permanently, and undecided instances are indexed by
// their ground symbols for delta-driven rechecks.
func (ev *Evaluator) assess(b Binding) {
	inst := SubstFormula(ev.pg.Template, b)
	switch evalFormulaFree(ev.h, inst) {
	case temporal.True:
	case temporal.False:
		ev.failed = true
	default:
		key := b.Key()
		ev.unknown[key] = inst
		for sym := range groundSymKeys(inst) {
			deps := ev.depIndex[sym]
			if deps == nil {
				deps = map[string]bool{}
				ev.depIndex[sym] = deps
			}
			deps[key] = true
		}
	}
}
