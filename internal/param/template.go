package param

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
)

// Template is a parametrized workflow (§5.1): dependencies whose
// events share variables, plus the key event whose occurrence binds
// them.  Attempting a ground instance of the key event unifies against
// it, and the resulting binding instantiates the workflow afresh.
type Template struct {
	// Deps are the parametrized dependencies.
	Deps []*algebra.Expr
	// Key is the binding event type, e.g. s_buy[?cid].
	Key algebra.Symbol
}

// NewTemplate builds a template from dependency sources in text syntax
// and a key event.
func NewTemplate(key string, deps ...string) (*Template, error) {
	k, err := algebra.ParseSymbol(key)
	if err != nil {
		return nil, fmt.Errorf("param: key: %w", err)
	}
	t := &Template{Key: k}
	for i, src := range deps {
		d, err := algebra.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("param: dependency %d: %w", i+1, err)
		}
		t.Deps = append(t.Deps, d)
	}
	return t, nil
}

// Validate checks that the key's variables cover every variable of the
// dependencies, so instantiation grounds the whole workflow.
func (t *Template) Validate() error {
	if t.Key.Name == "" {
		return fmt.Errorf("param: template without a key event")
	}
	keyVars := map[string]bool{}
	for _, term := range t.Key.Params {
		if term.IsVar {
			keyVars[term.Value] = true
		}
	}
	for i, d := range t.Deps {
		for _, v := range Vars(d) {
			if !keyVars[v] {
				return fmt.Errorf("param: dependency %d uses variable ?%s not bound by key %s",
					i+1, v, t.Key)
			}
		}
	}
	return nil
}

// Instantiate unifies a ground occurrence of the key event against the
// template and returns the fully ground workflow instance.
func (t *Template) Instantiate(ground algebra.Symbol) (*core.Workflow, Binding, error) {
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	b, ok := Unify(t.Key, ground)
	if !ok {
		return nil, nil, fmt.Errorf("param: %s does not instantiate key %s", ground, t.Key)
	}
	w := &core.Workflow{}
	for _, d := range t.Deps {
		inst := SubstExpr(d, b)
		if !Ground(inst) {
			return nil, nil, fmt.Errorf("param: instance %s not ground", inst)
		}
		w.Deps = append(w.Deps, inst)
	}
	return w, b, nil
}
