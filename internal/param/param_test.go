package param

import (
	"testing"

	"repro/internal/algebra"
)

func sym(k string) algebra.Symbol {
	s, err := algebra.ParseSymbol(k)
	if err != nil {
		panic(err)
	}
	return s
}

func TestUnify(t *testing.T) {
	cases := []struct {
		pattern, ground string
		want            Binding
		ok              bool
	}{
		{"e[?x]", "e[c1]", Binding{"x": "c1"}, true},
		{"e[?x,?y]", "e[a,b]", Binding{"x": "a", "y": "b"}, true},
		{"e[?x,?x]", "e[a,a]", Binding{"x": "a"}, true},
		{"e[?x,?x]", "e[a,b]", nil, false},
		{"e[k,?y]", "e[k,b]", Binding{"y": "b"}, true},
		{"e[k,?y]", "e[x,b]", nil, false},
		{"e[?x]", "f[c1]", nil, false},
		{"e[?x]", "~e[c1]", nil, false},
		{"~e[?x]", "~e[c1]", Binding{"x": "c1"}, true},
		{"e[?x]", "e[a,b]", nil, false},
		{"e", "e", Binding{}, true},
	}
	for _, c := range cases {
		got, ok := Unify(sym(c.pattern), sym(c.ground))
		if ok != c.ok {
			t.Errorf("Unify(%s, %s): ok=%v want %v", c.pattern, c.ground, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if got.Key() != c.want.Key() {
			t.Errorf("Unify(%s, %s): got %v want %v", c.pattern, c.ground, got.Key(), c.want.Key())
		}
	}
}

func TestBindingMerge(t *testing.T) {
	a := Binding{"x": "1"}
	b := Binding{"y": "2"}
	m, ok := a.Merge(b)
	if !ok || m["x"] != "1" || m["y"] != "2" {
		t.Fatalf("merge: %v %v", m, ok)
	}
	if _, ok := a.Merge(Binding{"x": "9"}); ok {
		t.Fatal("conflicting merge must fail")
	}
	if a.Key() != "{x=1}" || (Binding{}).Key() != "{}" {
		t.Fatalf("keys: %q %q", a.Key(), (Binding{}).Key())
	}
}

func TestSubstExpr(t *testing.T) {
	e := algebra.MustParse("enter[?x] . exit[?x] + ~req[?y]")
	got := SubstExpr(e, Binding{"x": "t7"})
	want := algebra.MustParse("enter[t7] . exit[t7] + ~req[?y]")
	if !got.Equal(want) {
		t.Fatalf("subst: got %v want %v", got, want)
	}
	if Ground(got) {
		t.Fatal("?y must remain")
	}
	if vs := Vars(got); len(vs) != 1 || vs[0] != "y" {
		t.Fatalf("vars: %v", vs)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	b1 := sym("enter")
	first := c.Next(b1)
	second := c.Next(b1)
	if first.Key() != "enter[1]" || second.Key() != "enter[2]" {
		t.Fatalf("tokens: %s %s", first, second)
	}
	if c.Count(b1) != 2 {
		t.Fatalf("count: %d", c.Count(b1))
	}
	// Complement polarity shares the counter of the base event.
	third := c.Next(sym("~enter"))
	if third.Key() != "~enter[3]" {
		t.Fatalf("complement token: %s", third)
	}
}

// TestExample12Template reproduces Example 12: the travel workflow
// parametrized by customer id, instantiated when s_buy[cid] is bound.
func TestExample12Template(t *testing.T) {
	tpl, err := NewTemplate("s_buy[?cid]",
		"~s_buy[?cid] + s_book[?cid]",
		"~c_buy[?cid] + c_book[?cid] . c_buy[?cid]",
		"~c_book[?cid] + c_buy[?cid] + s_cancel[?cid]",
	)
	if err != nil {
		t.Fatal(err)
	}
	w, b, err := tpl.Instantiate(sym("s_buy[alice]"))
	if err != nil {
		t.Fatal(err)
	}
	if b["cid"] != "alice" {
		t.Fatalf("binding: %v", b)
	}
	if len(w.Deps) != 3 {
		t.Fatalf("deps: %d", len(w.Deps))
	}
	want := algebra.MustParse("~c_buy[alice] + c_book[alice] . c_buy[alice]")
	if !w.Deps[1].Equal(want) {
		t.Fatalf("instance: got %v want %v", w.Deps[1], want)
	}
	// Two customers yield independent instances.
	w2, _, err := tpl.Instantiate(sym("s_buy[bob]"))
	if err != nil {
		t.Fatal(err)
	}
	if w.Deps[0].Gamma().Intersects(w2.Deps[0].Gamma()) {
		t.Fatal("instances for different customers must be alphabet-disjoint")
	}
}

func TestTemplateValidate(t *testing.T) {
	tpl, err := NewTemplate("key[?a]", "e[?a] + f[?b]")
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.Validate(); err == nil {
		t.Fatal("unbound ?b must be rejected")
	}
	if _, _, err := tpl.Instantiate(sym("key[1]")); err == nil {
		t.Fatal("instantiation of invalid template must fail")
	}
	tpl2, _ := NewTemplate("key[?a]", "e[?a] + f[?a]")
	if _, _, err := tpl2.Instantiate(sym("other[1]")); err == nil {
		t.Fatal("non-matching ground event must fail")
	}
}
