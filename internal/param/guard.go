package param

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/temporal"
)

// History is the ground-event knowledge of a parametrized scheduler:
// a temporal.Knowledge plus the enumerable list of occurrences, from
// which candidate bindings are extracted.
type History struct {
	know    temporal.Knowledge
	grounds []algebra.Symbol
}

// Observe records a ground occurrence at a logical time.
func (h *History) Observe(s algebra.Symbol, t int64) {
	h.know.Observe(s, t)
	h.grounds = append(h.grounds, s)
}

// Know exposes the underlying knowledge.
func (h *History) Know() *temporal.Knowledge { return &h.know }

// Occurred reports whether the ground symbol occurred.
func (h *History) Occurred(s algebra.Symbol) bool {
	return h.know.Status(s) == temporal.StatusOccurred
}

// candidates returns the constants observed for a variable: every
// value the variable takes under any unification of the formula's
// parametrized symbols against the observed occurrences (polarity
// ignored — a superset of the relevant bindings is safe, since
// irrelevant instances evaluate like fresh ones).
func (h *History) candidates(f temporal.Formula, v string) []string {
	seen := map[string]bool{}
	for _, pat := range f.Symbols() {
		hasVar := false
		for _, t := range pat.Params {
			if t.IsVar && t.Value == v {
				hasVar = true
			}
		}
		if !hasVar {
			continue
		}
		for _, g := range h.grounds {
			for _, cand := range []algebra.Symbol{g, g.Complement()} {
				if b, ok := Unify(pat, cand); ok {
					if val, bound := b[v]; bound {
						seen[val] = true
					}
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ParamGuard is a guard template over parametrized events whose
// unbound variables are universally quantified (§5.2).  Evaluation
// materializes an instance per relevant binding; instances that the
// history has discharged contribute ⊤ and disappear, and fresh
// bindings keep the template alive — the growth, shrinking, and
// resurrection of Example 14.
type ParamGuard struct {
	// Template is the guard formula, possibly with variable symbols.
	Template temporal.Formula
	vars     []string
}

// NewParamGuard builds a guard from a template formula.
func NewParamGuard(template temporal.Formula) *ParamGuard {
	seen := map[string]bool{}
	for _, s := range template.Symbols() {
		for _, t := range s.Params {
			if t.IsVar {
				seen[t.Value] = true
			}
		}
	}
	vars := make([]string, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return &ParamGuard{Template: template, vars: vars}
}

// Vars returns the guard's variable names, sorted.
func (pg *ParamGuard) Vars() []string { return pg.vars }

// SubstFormula applies a binding to every symbol of a formula.
func SubstFormula(f temporal.Formula, b Binding) temporal.Formula {
	if f.IsTrue() || f.IsFalse() || len(b) == 0 {
		return f
	}
	return temporal.MapLiterals(f, func(l temporal.Literal) temporal.Literal {
		return substLit(l, b)
	})
}

func substLit(l temporal.Literal, b Binding) temporal.Literal {
	switch l.Kind() {
	case temporal.LitOccurred:
		return temporal.Occurred(SubstSymbol(l.Sym(), b))
	case temporal.LitNotYet:
		return temporal.NotYet(SubstSymbol(l.Sym(), b))
	default:
		syms := make([]algebra.Symbol, len(l.Syms()))
		for i, s := range l.Syms() {
			syms[i] = SubstSymbol(s, b)
		}
		return temporal.Eventually(syms...)
	}
}

// Eval evaluates the guard universally: the conjunction, over every
// relevant binding of the variables (including a fresh, never-seen
// value per variable), of the instantiated formula.  Literals still
// containing a free variable after instantiation evaluate as a fresh
// instance: ¬ literals hold (nothing with that identity has occurred),
// □ and ◇ literals do not.
func (pg *ParamGuard) Eval(h *History) temporal.Tri {
	result := temporal.True
	for _, b := range pg.relevantBindings(h) {
		switch pg.evalInstance(h, b) {
		case temporal.False:
			return temporal.False
		case temporal.Unknown:
			result = temporal.Unknown
		}
	}
	return result
}

// relevantBindings enumerates the cross product of each variable's
// observed candidates plus one fresh value (the empty assignment for
// that variable).
func (pg *ParamGuard) relevantBindings(h *History) []Binding {
	out := []Binding{{}}
	for _, v := range pg.vars {
		cands := h.candidates(pg.Template, v)
		var next []Binding
		for _, b := range out {
			// Fresh value: leave v unbound.
			next = append(next, b.Clone())
			for _, c := range cands {
				nb := b.Clone()
				nb[v] = c
				next = append(next, nb)
			}
		}
		out = next
	}
	return out
}

func (pg *ParamGuard) evalInstance(h *History, b Binding) temporal.Tri {
	return evalFormulaFree(h, SubstFormula(pg.Template, b))
}

// evalFormulaFree evaluates an instantiated formula (possibly with
// residual free variables) against the history; shared by the
// from-scratch Eval and the incremental Evaluator.
func evalFormulaFree(h *History, inst temporal.Formula) temporal.Tri {
	anyUnknown := false
	for _, p := range inst.Products() {
		v := evalProductFree(h, p)
		if v == temporal.True {
			return temporal.True
		}
		if v == temporal.Unknown {
			anyUnknown = true
		}
	}
	if inst.IsTrue() {
		return temporal.True
	}
	if anyUnknown {
		return temporal.Unknown
	}
	return temporal.False
}

func evalProductFree(h *History, p temporal.Product) temporal.Tri {
	anyUnknown := false
	for _, l := range p.Lits() {
		switch evalLitFree(h, l) {
		case temporal.False:
			return temporal.False
		case temporal.Unknown:
			anyUnknown = true
		}
	}
	if anyUnknown {
		return temporal.Unknown
	}
	return temporal.True
}

// evalLitFree evaluates a literal whose symbols may still contain free
// variables, which denote fresh identities: ground tokens that will
// never be minted.  For a fresh identity nothing has occurred (¬
// holds, □ does not), and — because executions are driven to maximal
// traces — the complement of each of its events eventually occurs at
// closeout.  Hence ◇ literals hold when their free members are all
// complements forming a suffix after a satisfiable ground prefix
// (closure events come after all real occurrences); any free positive
// member can never occur, and a ground member required after a free
// complement would have to follow closure, so both falsify.
func evalLitFree(h *History, l temporal.Literal) temporal.Tri {
	if litGround(l) {
		return h.know.DecideLit(l)
	}
	switch l.Kind() {
	case temporal.LitNotYet:
		return temporal.True
	case temporal.LitOccurred:
		return temporal.False
	default:
		syms := l.Syms()
		firstFree := -1
		for i, s := range syms {
			if !s.Ground() {
				if firstFree == -1 {
					firstFree = i
				}
				if !s.Bar {
					return temporal.False
				}
				continue
			}
			if firstFree != -1 {
				return temporal.False
			}
		}
		if firstFree == 0 {
			return temporal.True
		}
		return h.know.DecideLit(temporal.Eventually(syms[:firstFree]...))
	}
}

func litGround(l temporal.Literal) bool {
	for _, s := range l.Syms() {
		if !s.Ground() {
			return false
		}
	}
	return true
}

// Current returns the guard's present shape for inspection: the
// conjunction of the reduced live instances with the template itself
// (Example 14's display).  Discharged instances vanish; when every
// observed instance is discharged, the result is the template again —
// the resurrection.
func (pg *ParamGuard) Current(h *History) temporal.Formula {
	parts := []temporal.Formula{pg.Template}
	for _, b := range pg.relevantBindings(h) {
		if len(b) < len(pg.vars) {
			continue // partial or fresh: represented by the template
		}
		inst := h.know.Reduce(SubstFormula(pg.Template, b))
		if inst.IsTrue() {
			continue // discharged
		}
		parts = append(parts, inst)
	}
	return temporal.And(parts...)
}
