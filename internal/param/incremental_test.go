package param

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/temporal"
)

// TestEvaluatorMatchesScratch drives a standalone incremental
// Evaluator and the from-scratch ParamGuard.Eval over the same
// randomized templates and observation sequences, checking the
// verdicts agree at every history prefix.  The pattern pool includes
// multi-variable symbols, exercising the per-instance discovery
// fallback alongside the partial fast path and the delta rechecks.
func TestEvaluatorMatchesScratch(t *testing.T) {
	patPool := []string{"b[?x]", "~b[?x]", "e[?x]", "~e[?x]", "f[?y]", "~f[?y]", "c[?x,?y]", "~c[?x,?y]"}
	vals := []string{"1", "2", "3"}
	bases := []struct {
		name  string
		arity int
	}{{"b", 1}, {"e", 1}, {"f", 1}, {"c", 2}}
	r := rand.New(rand.NewSource(41))
	for iter := 0; iter < 80; iter++ {
		nProds := 1 + r.Intn(3)
		prods := make([]temporal.Formula, 0, nProds)
		for p := 0; p < nProds; p++ {
			n := 1 + r.Intn(3)
			lits := make([]temporal.Formula, 0, n)
			for i := 0; i < n; i++ {
				s := sym(patPool[r.Intn(len(patPool))])
				switch r.Intn(3) {
				case 0:
					lits = append(lits, temporal.Lit(temporal.Occurred(s)))
				case 1:
					lits = append(lits, temporal.Lit(temporal.NotYet(s)))
				default:
					lits = append(lits, temporal.Lit(temporal.Eventually(s, sym(patPool[r.Intn(len(patPool))]))))
				}
			}
			prods = append(prods, temporal.And(lits...))
		}
		tmpl := temporal.Or(prods...)
		pg := NewParamGuard(tmpl)
		h := &History{}
		ev := NewEvaluator(pg, h)
		if got, want := ev.Eval(), pg.Eval(h); got != want {
			t.Fatalf("iter %d: empty history: incremental %v scratch %v (template %s)", iter, got, want, tmpl.Key())
		}
		used := map[string]bool{}
		var seq []string
		var tick int64
		for step := 0; step < 25; step++ {
			b := bases[r.Intn(len(bases))]
			terms := make([]algebra.Term, b.arity)
			for i := range terms {
				terms[i] = algebra.Const(vals[r.Intn(len(vals))])
			}
			g := algebra.SymP(b.name, terms...)
			if r.Intn(2) == 0 {
				g = g.Complement()
			}
			// Keep the history consistent: Observe-only histories never
			// hold both a symbol and its complement.
			if used[g.Key()] || used[g.Complement().Key()] {
				continue
			}
			used[g.Key()] = true
			seq = append(seq, g.Key())
			tick++
			h.Observe(g, tick)
			got, want := ev.Eval(), pg.Eval(h)
			if got != want {
				t.Fatalf("iter %d: template %s after %v: incremental %v scratch %v",
					iter, tmpl.Key(), seq, got, want)
			}
			if again := ev.Eval(); again != got {
				t.Fatalf("iter %d: Eval not idempotent: %v then %v", iter, got, again)
			}
		}
	}
}

// TestManagerIncrementalMatchesScratch drives two managers over the
// Example 13 dependencies — one on the delta-driven evaluators, one on
// the from-scratch ablation — through identical randomized token
// streams (with occasional forced complements to exercise rejection)
// and requires identical outcomes, traces, and parked sets.
func TestManagerIncrementalMatchesScratch(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	bases := []string{"b1", "e1", "b2", "e2"}
	for iter := 0; iter < 30; iter++ {
		inc := example13Manager(t, false)
		scr := example13Manager(t, true)
		for step := 0; step < 40; step++ {
			tok := algebra.SymP(bases[r.Intn(len(bases))], algebra.Const(fmt.Sprintf("%d", 1+r.Intn(5))))
			if r.Intn(10) == 0 {
				c := tok.Complement()
				errI, errS := inc.Force(c), scr.Force(c)
				if (errI == nil) != (errS == nil) {
					t.Fatalf("iter %d step %d: force %s diverged: %v vs %v", iter, step, c, errI, errS)
				}
				continue
			}
			oi, errI := inc.Attempt(tok)
			os, errS := scr.Attempt(tok)
			if errI != nil || errS != nil {
				t.Fatalf("iter %d step %d: attempt errors: %v %v", iter, step, errI, errS)
			}
			if oi != os {
				t.Fatalf("iter %d step %d: token %s: incremental %v scratch %v (traces %v vs %v)",
					iter, step, tok, oi, os, inc.Trace(), scr.Trace())
			}
		}
		ti, ts := inc.Trace(), scr.Trace()
		if len(ti) != len(ts) {
			t.Fatalf("iter %d: trace lengths diverged: %v vs %v", iter, ti, ts)
		}
		for i := range ti {
			if !ti[i].Equal(ts[i]) {
				t.Fatalf("iter %d: traces diverged at %d: %v vs %v", iter, i, ti, ts)
			}
		}
		pi, ps := inc.ParkedTokens(), scr.ParkedTokens()
		if len(pi) != len(ps) {
			t.Fatalf("iter %d: parked sets diverged: %v vs %v", iter, pi, ps)
		}
		for i := range pi {
			if !pi[i].Equal(ps[i]) {
				t.Fatalf("iter %d: parked sets diverged at %d: %v vs %v", iter, i, pi, ps)
			}
		}
		// No SatisfiesInstances assertion: forced complements bypass
		// guards by design, so the realized trace need not satisfy the
		// dependencies — equivalence of the two modes is the property.
	}
}
