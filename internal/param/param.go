// Package param implements §5 of the paper: parametrized events and
// the scheduling of dependencies over them, which is what lets the
// approach handle tasks of arbitrary structure — loops included.
//
// Event atoms carry a tuple of parameter terms; a term is either a
// constant or a variable (written ?x in the text syntax).  Two uses
// are supported, mirroring §5.1 and §5.2:
//
//   - Intra-workflow parametrization (Template): the variables of all
//     events are bound together when a key event occurs, instantiating
//     the workflow afresh; the instance is then compiled and scheduled
//     exactly like a ground workflow.
//
//   - Inter-workflow parametrization (ParamGuard, Manager): events in
//     one dependency carry unrelated parameters; unbound parameters in
//     a guard are treated as universally quantified.  A guard instance
//     is materialized for each binding the history makes relevant, and
//     discharged instances disappear — the guard "grows and shrinks as
//     necessary" and is resurrected for fresh instances, which is what
//     loops require (Example 14).
//
// Event identity without domain parameters follows §5.1's recipe: each
// agent numbers the occurrences of its event types (Counter), making
// every token unique.
package param

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
)

// Binding maps variable names to constant values.
type Binding map[string]string

// Key returns a canonical text form of the binding.
func (b Binding) Key() string {
	if len(b) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + b[k]
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Clone returns an independent copy.
func (b Binding) Clone() Binding {
	cp := make(Binding, len(b))
	for k, v := range b {
		cp[k] = v
	}
	return cp
}

// Merge returns the union of two bindings, failing on conflicting
// assignments.
func (b Binding) Merge(o Binding) (Binding, bool) {
	out := b.Clone()
	for k, v := range o {
		if prev, ok := out[k]; ok && prev != v {
			return nil, false
		}
		out[k] = v
	}
	return out, true
}

// Unify matches a (possibly parametrized) pattern symbol against a
// ground symbol: same name, same polarity, same arity; variables bind
// to the ground constants, constants must match literally.
func Unify(pattern, ground algebra.Symbol) (Binding, bool) {
	if pattern.Name != ground.Name || pattern.Bar != ground.Bar ||
		len(pattern.Params) != len(ground.Params) {
		return nil, false
	}
	b := Binding{}
	for i, pt := range pattern.Params {
		gt := ground.Params[i]
		if gt.IsVar {
			return nil, false // ground side must be ground
		}
		if pt.IsVar {
			if prev, ok := b[pt.Value]; ok && prev != gt.Value {
				return nil, false
			}
			b[pt.Value] = gt.Value
			continue
		}
		if pt.Value != gt.Value {
			return nil, false
		}
	}
	return b, true
}

// SubstSymbol applies a binding to a symbol's variable parameters;
// unbound variables are left in place.
func SubstSymbol(s algebra.Symbol, b Binding) algebra.Symbol {
	if len(s.Params) == 0 {
		return s
	}
	params := make([]algebra.Term, len(s.Params))
	for i, t := range s.Params {
		if t.IsVar {
			if v, ok := b[t.Value]; ok {
				params[i] = algebra.Const(v)
				continue
			}
		}
		params[i] = t
	}
	out := s
	out.Params = params
	return out
}

// SubstExpr applies a binding throughout an expression.
func SubstExpr(e *algebra.Expr, b Binding) *algebra.Expr {
	switch e.Kind() {
	case algebra.KZero, algebra.KTop:
		return e
	case algebra.KAtom:
		return algebra.At(SubstSymbol(e.Symbol(), b))
	case algebra.KSeq:
		return algebra.Seq(substAll(e.Subs(), b)...)
	case algebra.KChoice:
		return algebra.Choice(substAll(e.Subs(), b)...)
	case algebra.KConj:
		return algebra.Conj(substAll(e.Subs(), b)...)
	}
	panic("param: invalid expression kind")
}

func substAll(es []*algebra.Expr, b Binding) []*algebra.Expr {
	out := make([]*algebra.Expr, len(es))
	for i, e := range es {
		out[i] = SubstExpr(e, b)
	}
	return out
}

// Vars returns the distinct variable names of an expression, sorted.
func Vars(e *algebra.Expr) []string {
	seen := map[string]bool{}
	for _, s := range e.Atoms() {
		for _, t := range s.Params {
			if t.IsVar {
				seen[t.Value] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Ground reports whether the expression has no variables.
func Ground(e *algebra.Expr) bool { return len(Vars(e)) == 0 }

// Counter issues per-event-type occurrence counts, the §5.1 recipe for
// unique event ids when no domain identifier exists.  The zero value
// is ready to use.
type Counter struct {
	counts map[string]int
}

// Next returns the ground token for the next instance of the event
// type: the type's symbol with the count appended as a final constant
// parameter.
func (c *Counter) Next(eventType algebra.Symbol) algebra.Symbol {
	if c.counts == nil {
		c.counts = make(map[string]int)
	}
	base := eventType.Base().Key()
	c.counts[base]++
	out := eventType
	out.Params = append(append([]algebra.Term(nil), eventType.Params...),
		algebra.Const(fmt.Sprintf("%d", c.counts[base])))
	return out
}

// Count returns the number of tokens issued for the event type.
func (c *Counter) Count(eventType algebra.Symbol) int {
	if c.counts == nil {
		return 0
	}
	return c.counts[eventType.Base().Key()]
}
