package param

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
)

// mutexDeps is Example 13 in both directions: if Ti enters its
// critical section before Tj, Ti exits before Tj enters.
func mutexDeps() []string {
	return []string{
		"b2[?y] . b1[?x] + ~e1[?x] + ~b2[?y] + e1[?x] . b2[?y]",
		"b1[?x] . b2[?y] + ~e2[?y] + ~b1[?x] + e2[?y] . b1[?x]",
	}
}

// TestExample13MutualExclusion: two looping tasks never overlap in
// their critical sections, across multiple iterations.
func TestExample13MutualExclusion(t *testing.T) {
	m, err := NewManager(mutexDeps()...)
	if err != nil {
		t.Fatal(err)
	}
	var c Counter

	// Iteration 1: T1 enters, T2's entry must park, T1 exits, T2 enters.
	b1 := c.Next(sym("b1"))
	if out, err := m.Attempt(b1); err != nil || out != Accepted {
		t.Fatalf("b1[1]: %v %v (guard instances: %v)", out, err, m.GuardInstances(b1))
	}
	b2 := c.Next(sym("b2"))
	if out, _ := m.Attempt(b2); out != Parked {
		t.Fatalf("b2[1] during T1's CS: got %v want parked (trace %v)", out, m.Trace())
	}
	e1 := c.Next(sym("e1"))
	if out, _ := m.Attempt(e1); out != Accepted {
		t.Fatalf("e1[1]: got %v", out)
	}
	if !m.History().Occurred(b2) {
		t.Fatalf("b2[1] must be admitted after T1 exits, trace %v", m.Trace())
	}

	// Iteration 2 (arbitrary task structure — the loop): T2 still in
	// its CS, so T1's next entry parks; after e2, it is admitted.
	b1b := c.Next(sym("b1"))
	if out, _ := m.Attempt(b1b); out != Parked {
		t.Fatalf("b1[2] during T2's CS: got %v want parked (trace %v)", out, m.Trace())
	}
	e2 := c.Next(sym("e2"))
	if out, _ := m.Attempt(e2); out != Accepted {
		t.Fatalf("e2[1]: got %v", out)
	}
	if !m.History().Occurred(b1b) {
		t.Fatalf("b1[2] must be admitted after T2 exits, trace %v", m.Trace())
	}

	if inst, ok := m.SatisfiesInstances(); !ok {
		t.Fatalf("trace %v violates instance %v", m.Trace(), inst)
	}
	assertNoOverlap(t, m.Trace())
}

// assertNoOverlap checks the critical sections never interleave:
// between any b_i[k] and the matching e_i[k], no b_j occurs.
func assertNoOverlap(t *testing.T, tr algebra.Trace) {
	t.Helper()
	open := ""
	for _, s := range tr {
		switch s.Name {
		case "b1", "b2":
			if open != "" {
				t.Fatalf("overlapping critical sections in %v", tr)
			}
			open = s.Name
		case "e1":
			if open != "b1" {
				t.Fatalf("exit without entry in %v", tr)
			}
			open = ""
		case "e2":
			if open != "b2" {
				t.Fatalf("exit without entry in %v", tr)
			}
			open = ""
		}
	}
}

// TestManagerLoop runs many alternating iterations, exercising guard
// resurrection at scale.
func TestManagerLoop(t *testing.T) {
	m, err := NewManager(mutexDeps()...)
	if err != nil {
		t.Fatal(err)
	}
	var c Counter
	for i := 0; i < 10; i++ {
		b1 := c.Next(sym("b1"))
		if out, _ := m.Attempt(b1); out != Accepted {
			t.Fatalf("iter %d: b1 got %v (trace %v)", i, out, m.Trace())
		}
		e1 := c.Next(sym("e1"))
		if out, _ := m.Attempt(e1); out != Accepted {
			t.Fatalf("iter %d: e1 got %v", i, out)
		}
		b2 := c.Next(sym("b2"))
		if out, _ := m.Attempt(b2); out != Accepted {
			t.Fatalf("iter %d: b2 got %v (trace %v)", i, out, m.Trace())
		}
		e2 := c.Next(sym("e2"))
		if out, _ := m.Attempt(e2); out != Accepted {
			t.Fatalf("iter %d: e2 got %v", i, out)
		}
	}
	if inst, ok := m.SatisfiesInstances(); !ok {
		t.Fatalf("trace %v violates %v", m.Trace(), inst)
	}
	if len(m.Trace()) != 40 {
		t.Fatalf("trace length: %d", len(m.Trace()))
	}
	assertNoOverlap(t, m.Trace())
}

// TestManagerInterleavedParking: parked entries are admitted in cascade
// when the blocking section exits.
func TestManagerInterleavedParking(t *testing.T) {
	m, _ := NewManager(mutexDeps()...)
	var c Counter
	b1 := c.Next(sym("b1"))
	m.Attempt(b1)
	b2 := c.Next(sym("b2"))
	if out, _ := m.Attempt(b2); out != Parked {
		t.Fatalf("b2 must park, got %v", out)
	}
	if got := m.ParkedTokens(); len(got) != 1 {
		t.Fatalf("parked: %v", got)
	}
	e1 := c.Next(sym("e1"))
	m.Attempt(e1)
	if got := m.ParkedTokens(); len(got) != 0 {
		t.Fatalf("parked after exit: %v", got)
	}
	assertNoOverlap(t, m.Trace())
}

// TestManagerForceAndReject: forcing records occurrences regardless of
// guards; attempting against an occurred complement rejects.
func TestManagerForceAndReject(t *testing.T) {
	m, _ := NewManager("~a[?x] + b[?x]")
	if err := m.Force(sym("a[1]")); err != nil {
		t.Fatal(err)
	}
	if err := m.Force(sym("~a[1]")); err == nil {
		t.Fatal("forcing the complement of an occurred event must fail")
	}
	if out, _ := m.Attempt(sym("~a[1]")); out != Rejected {
		t.Fatalf("~a[1] after a[1]: got %v", out)
	}
	if out, _ := m.Attempt(sym("a[1]")); out != Accepted {
		t.Fatal("re-attempting an occurred event must accept")
	}
	if _, err := m.Attempt(sym("a[?z]")); err == nil {
		t.Fatal("non-ground attempts must error")
	}
	if err := m.Force(sym("a[?z]")); err == nil {
		t.Fatal("non-ground force must error")
	}
}

func TestManagerErrors(t *testing.T) {
	if _, err := NewManager(); err == nil {
		t.Fatal("empty manager must error")
	}
	if _, err := NewManager("e +"); err == nil {
		t.Fatal("syntax errors must propagate")
	}
}

// TestManagerGuardTemplatesCached: guard synthesis happens once per
// (dependency, event type).
func TestManagerGuardTemplatesCached(t *testing.T) {
	m, _ := NewManager(mutexDeps()...)
	var c Counter
	for i := 0; i < 3; i++ {
		m.Attempt(c.Next(sym("b1")))
		m.Attempt(c.Next(sym("e1")))
	}
	nTemplates := len(m.templates)
	for i := 0; i < 3; i++ {
		m.Attempt(c.Next(sym("b1")))
		m.Attempt(c.Next(sym("e1")))
	}
	if len(m.templates) != nTemplates {
		t.Fatalf("template cache grew: %d → %d", nTemplates, len(m.templates))
	}
	if nTemplates == 0 {
		t.Fatal("templates must be cached")
	}
	_ = fmt.Sprintf("%v", m.Trace())
}

// TestExample13PaperDirectionOnly uses exactly the paper's single
// dependency (one direction): if T1 enters before T2, T1 exits before
// T2 enters.  T2's entry during T1's critical section parks; the
// reverse interleaving is unconstrained by this dependency.
func TestExample13PaperDirectionOnly(t *testing.T) {
	m, err := NewManager("b2[?y] . b1[?x] + ~e1[?x] + ~b2[?y] + e1[?x] . b2[?y]")
	if err != nil {
		t.Fatal(err)
	}
	var c Counter
	b1 := c.Next(sym("b1"))
	if out, _ := m.Attempt(b1); out != Accepted {
		t.Fatalf("b1[1]: %v", out)
	}
	b2 := c.Next(sym("b2"))
	if out, _ := m.Attempt(b2); out != Parked {
		t.Fatalf("b2[1] during T1's CS: %v", out)
	}
	e1 := c.Next(sym("e1"))
	if out, _ := m.Attempt(e1); out != Accepted {
		t.Fatalf("e1[1]: %v", out)
	}
	if !m.History().Occurred(b2) {
		t.Fatalf("b2[1] must be admitted after T1 exits: %v", m.Trace())
	}
	// The one-directional dependency does not constrain T1 entering
	// while T2 is inside.
	b1b := c.Next(sym("b1"))
	if out, _ := m.Attempt(b1b); out != Accepted {
		t.Fatalf("b1[2] unconstrained by the one-direction dependency: %v", out)
	}
	if inst, ok := m.SatisfiesInstances(); !ok {
		t.Fatalf("trace %v violates %v", m.Trace(), inst)
	}
}
