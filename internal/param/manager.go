package param

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/temporal"
)

// Outcome of an attempt at the parametrized manager.
type Outcome uint8

// Attempt outcomes.
const (
	// Accepted: the event occurred.
	Accepted Outcome = iota
	// Parked: the event must wait; it is retried automatically as
	// occurrences accumulate.
	Parked
	// Rejected: the event can never occur (its complement occurred or
	// its guard is permanently false).
	Rejected
)

func (o Outcome) String() string {
	switch o {
	case Accepted:
		return "accepted"
	case Parked:
		return "parked"
	case Rejected:
		return "rejected"
	}
	return "invalid"
}

// Manager schedules ground event tokens against parametrized
// dependencies (§5.2).  It synthesizes one guard template per
// (dependency, event type) — precompilation — and, at each attempt,
// unifies the ground token against the type, instantiates the
// template, and evaluates it universally over the remaining variables.
//
// The manager is a single-site scheduler: §5's contribution is the
// reasoning over parameters, which is orthogonal to the distribution
// machinery of §4 (the distributed actors would hold ParamGuards
// instead of ground guards).  It is what makes tasks with loops and
// arbitrary structure schedulable: every iteration is a fresh token
// and guards resurrect for it.
type Manager struct {
	deps      []*algebra.Expr
	gamma     [][]algebra.Symbol // per dependency: distinct Γ_D symbols, sorted
	hist      History
	synth     *core.Synthesizer
	templates map[string]*templateState // depIdx:eventTypeKey → guard template + shared candidate index
	// evals holds one persistent incremental Evaluator per guard
	// instance of each live token, keyed by the token; dropped once the
	// token is accepted or rejected.  When scratch is set (the P9
	// ablation and the equivalence tests), attempts fall back to the
	// from-scratch ParamGuard.Eval re-enumeration instead.
	evals    map[string][]*Evaluator
	scratch  bool
	parked   []algebra.Symbol
	rejected map[string]bool
	trace    []algebra.Symbol
	time     int64
}

// NewManager builds a manager from parametrized dependency sources.
func NewManager(deps ...string) (*Manager, error) {
	m := &Manager{
		synth:     core.NewSynthesizer(),
		templates: map[string]*templateState{},
		evals:     map[string][]*Evaluator{},
		rejected:  map[string]bool{},
	}
	for i, src := range deps {
		d, err := algebra.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("param: dependency %d: %w", i+1, err)
		}
		m.deps = append(m.deps, d)
	}
	if len(m.deps) == 0 {
		return nil, fmt.Errorf("param: manager needs at least one dependency")
	}
	for _, d := range m.deps {
		m.gamma = append(m.gamma, gammaTypes(d))
	}
	return m, nil
}

// DisableIncremental switches the manager to the from-scratch
// universal evaluation (ParamGuard.Eval) for every attempt — the
// ablation baseline for experiment P9 and the oracle for the
// incremental-equivalence property tests.  Call before the first
// attempt; modes must not be mixed mid-run.
func (m *Manager) DisableIncremental() { m.scratch = true }

// guardFor returns the (cached) guard template of an event type under
// one dependency, with the candidate index its tokens share.
func (m *Manager) guardFor(depIdx int, eventType algebra.Symbol) *templateState {
	key := fmt.Sprintf("%d:%s", depIdx, eventType.Key())
	if ts, ok := m.templates[key]; ok {
		return ts
	}
	ts := newTemplateState(NewParamGuard(m.synth.Guard(m.deps[depIdx], eventType)), &m.hist)
	m.templates[key] = ts
	return ts
}

// GuardInstances returns, for a ground token, every instantiated guard
// it must satisfy: one per (dependency, unifying event type).
func (m *Manager) GuardInstances(ground algebra.Symbol) []*ParamGuard {
	var out []*ParamGuard
	for i := range m.deps {
		for _, atomSym := range m.gamma[i] {
			b, ok := Unify(atomSym, ground)
			if !ok {
				continue
			}
			tmpl := m.guardFor(i, atomSym).pg
			inst := SubstFormula(tmpl.Template, b)
			out = append(out, NewParamGuard(inst))
		}
	}
	return out
}

// gammaTypes returns the distinct symbols of Γ_D sorted by key.
func gammaTypes(d *algebra.Expr) []algebra.Symbol {
	g := d.Gamma()
	out := g.Symbols()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Attempt submits a ground event token.  Parked tokens are retried on
// every later occurrence.
func (m *Manager) Attempt(ground algebra.Symbol) (Outcome, error) {
	if !ground.Ground() {
		return Rejected, fmt.Errorf("param: attempt of non-ground symbol %s", ground)
	}
	if m.hist.Occurred(ground) {
		return Accepted, nil
	}
	if m.rejected[ground.Key()] || m.hist.Occurred(ground.Complement()) {
		m.rejected[ground.Key()] = true
		m.dropEvals(ground)
		return Rejected, nil
	}
	switch m.eval(ground) {
	case temporal.True:
		m.fire(ground)
		return Accepted, nil
	case temporal.False:
		m.rejected[ground.Key()] = true
		m.dropEvals(ground)
		return Rejected, nil
	default:
		m.park(ground)
		return Parked, nil
	}
}

// Force makes a non-rejectable ground event occur regardless of its
// guard (abort-like events).
func (m *Manager) Force(ground algebra.Symbol) error {
	if !ground.Ground() {
		return fmt.Errorf("param: force of non-ground symbol %s", ground)
	}
	if m.hist.Occurred(ground) {
		return nil
	}
	if m.hist.Occurred(ground.Complement()) {
		return fmt.Errorf("param: cannot force %s: complement occurred", ground)
	}
	m.fire(ground)
	return nil
}

func (m *Manager) eval(ground algebra.Symbol) temporal.Tri {
	if m.scratch {
		result := temporal.True
		for _, pg := range m.GuardInstances(ground) {
			switch pg.Eval(&m.hist) {
			case temporal.False:
				return temporal.False
			case temporal.Unknown:
				result = temporal.Unknown
			}
		}
		return result
	}
	result := temporal.True
	for _, e := range m.evaluatorsFor(ground) {
		switch e.Eval() {
		case temporal.False:
			return temporal.False
		case temporal.Unknown:
			result = temporal.Unknown
		}
	}
	return result
}

// evaluatorsFor returns the token's persistent incremental evaluators,
// building them on the token's first attempt.
func (m *Manager) evaluatorsFor(ground algebra.Symbol) []*Evaluator {
	k := ground.Key()
	if evs, ok := m.evals[k]; ok {
		return evs
	}
	var evs []*Evaluator
	for i := range m.deps {
		for _, atomSym := range m.gamma[i] {
			b, ok := Unify(atomSym, ground)
			if !ok {
				continue
			}
			ts := m.guardFor(i, atomSym)
			inst := SubstFormula(ts.pg.Template, b)
			evs = append(evs, newEvaluatorWith(NewParamGuard(inst), &m.hist, ts))
		}
	}
	m.evals[k] = evs
	return evs
}

// dropEvals releases a settled token's evaluators (and their binding
// populations).
func (m *Manager) dropEvals(ground algebra.Symbol) {
	delete(m.evals, ground.Key())
}

func (m *Manager) park(ground algebra.Symbol) {
	for _, p := range m.parked {
		if p.Equal(ground) {
			return
		}
	}
	m.parked = append(m.parked, ground)
}

func (m *Manager) fire(ground algebra.Symbol) {
	m.time++
	m.hist.Observe(ground, m.time)
	m.trace = append(m.trace, ground)
	m.dropEvals(ground)
	m.retryParked()
}

// retryParked re-evaluates parked tokens after each occurrence;
// acceptance cascades, and tokens whose complements occurred are
// dropped as rejected.
func (m *Manager) retryParked() {
	for progress := true; progress; {
		progress = false
		kept := m.parked[:0]
		for _, p := range m.parked {
			if m.hist.Occurred(p.Complement()) {
				m.rejected[p.Key()] = true
				m.dropEvals(p)
				progress = true
				continue
			}
			switch m.eval(p) {
			case temporal.True:
				m.time++
				m.hist.Observe(p, m.time)
				m.trace = append(m.trace, p)
				m.dropEvals(p)
				progress = true
			case temporal.False:
				m.rejected[p.Key()] = true
				m.dropEvals(p)
				progress = true
			default:
				kept = append(kept, p)
			}
		}
		m.parked = kept
	}
}

// Trace returns the occurrence sequence so far.
func (m *Manager) Trace() algebra.Trace { return append(algebra.Trace(nil), m.trace...) }

// ParkedTokens returns the currently parked tokens.
func (m *Manager) ParkedTokens() []algebra.Symbol {
	return append([]algebra.Symbol(nil), m.parked...)
}

// History exposes the manager's history, for guard inspection.
func (m *Manager) History() *History { return &m.hist }

// SatisfiesInstances checks the realized trace against every ground
// instantiation of the dependencies over the bindings the trace makes
// relevant — the §5.2 correctness criterion.  It returns the first
// violated instance, if any.
func (m *Manager) SatisfiesInstances() (violated *algebra.Expr, ok bool) {
	tr := m.Trace()
	for _, d := range m.deps {
		for _, b := range groundBindings(d, tr) {
			inst := SubstExpr(d, b)
			if !Ground(inst) {
				continue
			}
			if !tr.Satisfies(inst) {
				return inst, false
			}
		}
	}
	return nil, true
}

// groundBindings enumerates the cross product of each variable's
// observed values in the trace.
func groundBindings(d *algebra.Expr, tr algebra.Trace) []Binding {
	vars := Vars(d)
	out := []Binding{{}}
	for _, v := range vars {
		seen := map[string]bool{}
		for _, pat := range d.Atoms() {
			for _, g := range tr {
				for _, cand := range []algebra.Symbol{g, g.Complement()} {
					if b, okU := Unify(pat, cand); okU {
						if val, bound := b[v]; bound {
							seen[val] = true
						}
					}
				}
			}
		}
		var vals []string
		for c := range seen {
			vals = append(vals, c)
		}
		sort.Strings(vals)
		var next []Binding
		for _, b := range out {
			for _, c := range vals {
				nb := b.Clone()
				nb[v] = c
				next = append(next, nb)
			}
		}
		if len(next) > 0 {
			out = next
		}
	}
	return out
}
