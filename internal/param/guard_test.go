package param

import (
	"testing"

	"repro/internal/temporal"
)

// TestExample14 replays Example 14 step by step: the guard on e[x] is
// ¬f[y] + □g[y] with y unbound.
func TestExample14(t *testing.T) {
	guard := NewParamGuard(temporal.Or(
		temporal.Lit(temporal.NotYet(sym("f[?y]"))),
		temporal.Lit(temporal.Occurred(sym("g[?y]"))),
	))
	var h History

	// Initially none of the f[y]'s has happened: ¬f[y] is true for all
	// y, so e[x] can go ahead.
	if got := guard.Eval(&h); got != temporal.True {
		t.Fatalf("initial: got %v want true", got)
	}

	// f[y1] happens: the guard grows to □g[y1] | (¬f[y] + □g[y]) and
	// is neither ⊤ nor 0 — e[x] must wait.
	h.Observe(sym("f[y1]"), 1)
	if got := guard.Eval(&h); got != temporal.Unknown {
		t.Fatalf("after f[y1]: got %v want unknown", got)
	}
	cur := guard.Current(&h)
	if cur.IsTrue() || cur.IsFalse() {
		t.Fatalf("after f[y1]: current guard must be a real constraint, got %q", cur.Key())
	}
	if got := cur.Key(); got != temporal.And(
		guard.Template,
		temporal.Lit(temporal.Occurred(sym("g[y1]"))),
	).Key() {
		t.Fatalf("after f[y1]: current guard %q", got)
	}

	// □g[y1] arrives: the instance is discharged and the guard is
	// reduced back to the template — e[x] is once again enabled.
	h.Observe(sym("g[y1]"), 2)
	if got := guard.Eval(&h); got != temporal.True {
		t.Fatalf("after g[y1]: got %v want true", got)
	}
	if !guard.Current(&h).Equal(guard.Template) {
		t.Fatalf("after g[y1]: guard must resurrect to the template, got %q",
			guard.Current(&h).Key())
	}

	// A second iteration (loops!): f[y2] re-constrains the guard.
	h.Observe(sym("f[y2]"), 3)
	if got := guard.Eval(&h); got != temporal.Unknown {
		t.Fatalf("after f[y2]: got %v want unknown", got)
	}
	h.Observe(sym("g[y2]"), 4)
	if got := guard.Eval(&h); got != temporal.True {
		t.Fatalf("after g[y2]: got %v want true", got)
	}
}

// TestParamGuardFalse: a permanently violated instance makes the whole
// universal guard false.
func TestParamGuardFalse(t *testing.T) {
	guard := NewParamGuard(temporal.Lit(temporal.NotYet(sym("f[?y]"))))
	var h History
	if guard.Eval(&h) != temporal.True {
		t.Fatal("vacuously true initially")
	}
	h.Observe(sym("f[c]"), 1)
	if guard.Eval(&h) != temporal.False {
		t.Fatal("¬f[y] universally must fail once any f[c] occurred")
	}
}

// TestParamGuardMixedVars: two variables enumerate their candidate
// cross product.
func TestParamGuardMixedVars(t *testing.T) {
	// ¬a[x] + □b[y]: for every x,y: a[x] not occurred or b[y] occurred.
	guard := NewParamGuard(temporal.Or(
		temporal.Lit(temporal.NotYet(sym("a[?x]"))),
		temporal.Lit(temporal.Occurred(sym("b[?y]"))),
	))
	if got := guard.Vars(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("vars: %v", got)
	}
	var h History
	h.Observe(sym("a[1]"), 1)
	// Instance (x=1, y fresh): ¬a[1] false, □b[fresh] false → false...
	// unless some b occurred.  Nothing did: the guard is false? No —
	// □b[y] with y fresh evaluates false, and ¬a[1] is false, so the
	// instance is false: the universal guard is False.
	if got := guard.Eval(&h); got != temporal.False {
		t.Fatalf("after a[1] with no b: got %v want false", got)
	}
	h2 := History{}
	h2.Observe(sym("b[7]"), 1)
	h2.Observe(sym("a[1]"), 2)
	// Instance (x=1, y=7): □b[7] true → instance true.  Instance
	// (x=1, y fresh): false.  Universal: false.  (The fresh-y instance
	// keeps the guard strict; this matches ∀y semantics.)
	if got := guard.Eval(&h2); got != temporal.False {
		t.Fatalf("universal over fresh y: got %v want false", got)
	}
}

// TestSubstFormula substitutes through all literal kinds.
func TestSubstFormula(t *testing.T) {
	f := temporal.Or(
		temporal.And(
			temporal.Lit(temporal.Occurred(sym("a[?x]"))),
			temporal.Lit(temporal.NotYet(sym("b[?x]"))),
		),
		temporal.Lit(temporal.Eventually(sym("a[?x]"), sym("c[?y]"))),
	)
	got := SubstFormula(f, Binding{"x": "k"})
	want := temporal.Or(
		temporal.And(
			temporal.Lit(temporal.Occurred(sym("a[k]"))),
			temporal.Lit(temporal.NotYet(sym("b[k]"))),
		),
		temporal.Lit(temporal.Eventually(sym("a[k]"), sym("c[?y]"))),
	)
	if !got.Equal(want) {
		t.Fatalf("subst formula: got %q want %q", got.Key(), want.Key())
	}
	if !SubstFormula(temporal.TrueF(), Binding{"x": "k"}).IsTrue() {
		t.Fatal("⊤ substitutes to ⊤")
	}
}
